"""Canonical labeling for small graphs (isomorphism-memoized compilation).

The divide-and-conquer partitioner (paper §IV.B) emits leaves of at most
``g_max ≈ 7`` vertices, and for structured targets (lattices, surface-code
patches, regular graphs) the *same* small graph reappears over and over up to
vertex relabeling.  :func:`canonical_form` computes an exact canonical
labeling for this leaf regime so that every isomorphic copy collapses to one
hashable key — the foundation of the subgraph compile cache
(:mod:`repro.core.compile_cache`).

Algorithm (classic individualization–refinement, sized for ``n <= ~12``):

1. **colour refinement** (1-WL): vertices start coloured by degree and are
   repeatedly split by the multiset of their neighbours' colours until
   stable.  All colour ids are derived from sorted invariants, so they are
   identical for isomorphic graphs.
2. **twin collapse**: a refinement cell whose members are pairwise twins
   (identical neighbourhoods outside the pair, adjacent or not) is closed
   under transpositions — every transposition is an automorphism — so its
   internal order never affects the canonical encoding and the cell needs no
   branching.
3. **bounded individualization**: the first remaining non-singleton cell is
   split by individualizing each of its members in turn; each branch is
   refined recursively.  At the leaves (all cells singleton or twin) the
   upper-triangle adjacency bits under the induced ordering form one big
   integer; the minimum over all leaves is the canonical encoding.

The search tree's *shape* is label-invariant (branching cells are chosen by
colour id and branch counts are cell sizes), so the ``max_leaves`` safety
valve triggers consistently across relabelings — a graph either canonicalises
for every labeling or for none, which is what keeps the compile cache sound.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.graphs.graph_state import GraphState
from repro.utils.misc import iter_bits

__all__ = [
    "CanonicalForm",
    "CanonicalizationBudgetError",
    "canonical_form",
    "canonical_key_digest",
]

Vertex = Hashable

#: Default cap on canonical-search leaves.  Leaves of the partitioner are
#: ``g_max ≈ 7`` vertices; even pathologically symmetric 12-vertex graphs
#: stay far below this once twin cells are collapsed.
DEFAULT_MAX_LEAVES = 10_000


class CanonicalizationBudgetError(RuntimeError):
    """The individualization search exceeded ``max_leaves``.

    The leaf count is a label-invariant of the graph, so the error is raised
    consistently for every relabeling — callers may safely treat the graph as
    uncacheable.
    """


@dataclass(frozen=True)
class CanonicalForm:
    """The canonical labeling of one graph.

    Attributes:
        key: hashable isomorphism-invariant key — ``(n, encoding)`` where
            ``encoding`` packs the upper-triangle adjacency bits of the
            canonically relabelled graph into one integer.  Two graphs have
            equal keys iff they are isomorphic.
        to_canonical: map ``original vertex -> canonical index`` (a bijection
            onto ``0..n-1``).
        from_canonical: inverse map as a tuple (``canonical index ->
            original vertex``).
    """

    key: tuple[int, int]
    to_canonical: dict[Vertex, int]
    from_canonical: tuple[Vertex, ...]

    @property
    def num_vertices(self) -> int:
        return self.key[0]

    def canonical_edges(self) -> list[tuple[int, int]]:
        """Edges of the canonical graph, decoded from the key."""
        n, encoding = self.key
        edges = []
        bit = n * (n - 1) // 2
        for i in range(n):
            for j in range(i + 1, n):
                bit -= 1
                if (encoding >> bit) & 1:
                    edges.append((i, j))
        return edges

    def build_graph(self) -> GraphState:
        """The canonical representative on vertices ``0..n-1``."""
        return GraphState(vertices=range(self.num_vertices), edges=self.canonical_edges())


def canonical_key_digest(key: tuple[int, int]) -> str:
    """Stable hex digest of a canonical key (filenames, derived RNG seeds)."""
    n, encoding = key
    payload = f"{n}:{encoding:x}".encode("ascii")
    return hashlib.sha256(payload).hexdigest()


# --------------------------------------------------------------------------- #
# Refinement
# --------------------------------------------------------------------------- #


def _refine(n: int, rows: Sequence[int], colors: list[int]) -> list[int]:
    """1-WL colour refinement to a stable partition (invariant colour ids)."""
    while True:
        signatures = [
            (colors[v], tuple(sorted(colors[w] for w in iter_bits(rows[v]))))
            for v in range(n)
        ]
        index = {sig: i for i, sig in enumerate(sorted(set(signatures)))}
        refined = [index[signatures[v]] for v in range(n)]
        if refined == colors:
            return colors
        colors = refined


def _cells(n: int, colors: list[int]) -> list[list[int]]:
    """Refinement cells in colour order, members in index order."""
    by_color: dict[int, list[int]] = {}
    for v in range(n):
        by_color.setdefault(colors[v], []).append(v)
    return [by_color[c] for c in sorted(by_color)]


def _is_twin_cell(cell: list[int], rows: Sequence[int]) -> bool:
    """True when every pair in ``cell`` is a (closed or open) twin pair."""
    for a in range(len(cell)):
        for b in range(a + 1, len(cell)):
            u, v = cell[a], cell[b]
            mask = ~((1 << u) | (1 << v))
            if (rows[u] & mask) != (rows[v] & mask):
                return False
    return True


# --------------------------------------------------------------------------- #
# Canonical search
# --------------------------------------------------------------------------- #


def _encode(n: int, rows: Sequence[int], ordering: list[int]) -> int:
    """Upper-triangle adjacency bits under ``ordering``, packed into an int."""
    encoding = 0
    for i in range(n):
        row = rows[ordering[i]]
        for j in range(i + 1, n):
            encoding = (encoding << 1) | ((row >> ordering[j]) & 1)
    return encoding


def canonical_form(graph: GraphState, max_leaves: int = DEFAULT_MAX_LEAVES) -> CanonicalForm:
    """Compute the canonical labeling of a small graph.

    Parameters
    ----------
    graph : GraphState
        The graph to canonicalise.  Intended for the leaf regime
        (``n <= ~12``); cost grows with the graph's symmetry.
    max_leaves : int, optional
        Safety valve on the number of complete orderings examined by the
        individualization search (a label-invariant of the graph).

    Returns
    -------
    CanonicalForm
        Canonical key plus the relabeling permutation.  Two inputs receive
        equal keys iff they are isomorphic, and
        ``form.build_graph()`` is the shared canonical representative.

    Raises
    ------
    CanonicalizationBudgetError
        If the search would examine more than ``max_leaves`` orderings.
    """
    vertices = graph.vertices()
    n = len(vertices)
    if n == 0:
        return CanonicalForm(key=(0, 0), to_canonical={}, from_canonical=())
    index = {v: i for i, v in enumerate(vertices)}
    rows = [0] * n
    for u, v in graph.edges():
        i, j = index[u], index[v]
        rows[i] |= 1 << j
        rows[j] |= 1 << i

    degrees = [rows[v].bit_count() for v in range(n)]
    degree_index = {d: i for i, d in enumerate(sorted(set(degrees)))}
    initial = [degree_index[degrees[v]] for v in range(n)]

    best: tuple[int, list[int]] | None = None
    leaves = 0

    stack: list[list[int]] = [initial]
    while stack:
        colors = _refine(n, rows, stack.pop())
        cells = _cells(n, colors)
        branch_cell: list[int] | None = None
        for cell in cells:
            if len(cell) > 1 and not _is_twin_cell(cell, rows):
                branch_cell = cell
                break
        if branch_cell is None:
            leaves += 1
            if leaves > max_leaves:
                raise CanonicalizationBudgetError(
                    f"canonical search exceeded {max_leaves} orderings "
                    f"(n={n}); treat the graph as uncacheable"
                )
            # Twin cells are automorphism-closed: any internal order yields
            # the same encoding, so index order inside each cell is fine.
            ordering = [v for cell in cells for v in cell]
            encoding = _encode(n, rows, ordering)
            if best is None or encoding < best[0]:
                best = (encoding, ordering)
            continue
        for v in branch_cell:
            # Individualize v: give it a fresh colour behind its cell-mates.
            stack.append([(c * 2 + (1 if w == v else 0)) for w, c in enumerate(colors)])

    assert best is not None
    encoding, ordering = best
    from_canonical = tuple(vertices[v] for v in ordering)
    to_canonical = {vertex: pos for pos, vertex in enumerate(from_canonical)}
    return CanonicalForm(
        key=(n, encoding),
        to_canonical=to_canonical,
        from_canonical=from_canonical,
    )
