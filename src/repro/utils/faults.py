"""Deterministic, process-wide fault injection for chaos testing.

The fleet's robustness claims ("survives worker crashes, torn journals,
corrupt caches, hung compiles") are only as good as our ability to
*reproduce* those failures on demand.  This module provides named
injection points threaded through the hot paths of the pipeline and the
service layer:

========================  ====================================================
Point                     Fires
========================  ====================================================
``journal.fsync``         before the pending journal fsyncs an appended record
``disk_cache.read``       after a disk-cache entry's bytes are read
``disk_cache.write``      before a disk-cache entry is atomically published
``worker.spawn``          before the supervisor spawns a worker process
``dispatch.forward``      before the front end forwards a request to a worker
``compile.step``          at the start of every batch-job execution
``heartbeat.probe``       before the supervisor probes a worker's ``/healthz``
``replication.send``      before the primary sends a frame to the standby
``lease.renew``           before the primary rewrites its leadership lease
========================  ====================================================

Faults are configured by a declarative *schedule* — a JSON document loaded
from the ``REPRO_FAULT_SCHEDULE`` environment variable (a file path, or the
inline JSON itself) or installed programmatically with
:func:`install_schedule`.  Each rule names a point, a trigger and an action:

.. code-block:: json

    {"seed": 7, "rules": [
        {"point": "disk_cache.write", "action": "raise", "every": 1},
        {"point": "compile.step", "action": "crash", "match": "#666"},
        {"point": "compile.step", "action": "sleep", "seconds": 2.0, "nth": 3},
        {"point": "disk_cache.read", "action": "corrupt", "probability": 0.5}
    ]}

Triggers (at most one per rule; default fires on every hit):

* ``nth`` — fire exactly once, on the Nth matching hit;
* ``every`` — fire on every Kth matching hit;
* ``probability`` — fire with probability *p*, drawn from a ``Random``
  seeded from the schedule seed and the rule index, so a given schedule
  replays bit-identically across runs;
* ``times`` caps the total number of fires of any trigger.

Actions: ``raise`` (raise :class:`FaultInjected`, an ``OSError``),
``crash`` (``os._exit(CRASH_EXIT_CODE)``), ``sleep`` (block for
``seconds``), ``corrupt`` (deterministically flip bits of the bytes
passing through the point).  Rules with ``match`` only consider hits
whose *context* string (a job label, a journal op, a worker index)
contains the substring.

The fast path is a single attribute check when no schedule is installed,
so production code pays nothing for carrying the hooks.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from random import Random

__all__ = [
    "CRASH_EXIT_CODE",
    "FAULT_ACTIONS",
    "FAULT_POINTS",
    "FAULT_SCHEDULE_ENV",
    "FaultInjected",
    "FaultPoint",
    "FaultRegistry",
    "FaultRule",
    "FaultSchedule",
    "get_registry",
    "install_schedule",
    "reset_registry",
]

FAULT_SCHEDULE_ENV = "REPRO_FAULT_SCHEDULE"

#: Exit code used by the ``crash`` action, distinct from Python tracebacks
#: (1) and SIGKILL (-9) so tests can assert the crash was injected.
CRASH_EXIT_CODE = 70

FAULT_POINTS = (
    "journal.fsync",
    "disk_cache.read",
    "disk_cache.write",
    "worker.spawn",
    "dispatch.forward",
    "compile.step",
    "heartbeat.probe",
    "replication.send",
    "lease.renew",
)

FAULT_ACTIONS = ("raise", "crash", "sleep", "corrupt")

SCHEDULE_SCHEMA_VERSION = 1

_RULE_KEYS = {
    "point",
    "action",
    "nth",
    "every",
    "probability",
    "times",
    "seconds",
    "match",
    "message",
}


class FaultInjected(OSError):
    """Raised by the ``raise`` action so injected faults are distinguishable."""


@dataclass(frozen=True)
class FaultRule:
    """One declarative fault: a point, a trigger and an action."""

    point: str
    action: str
    nth: int | None = None
    every: int | None = None
    probability: float | None = None
    times: int | None = None
    seconds: float = 0.05
    match: str | None = None
    message: str = "injected fault"

    def __post_init__(self) -> None:
        """Validate the rule shape eagerly, so bad schedules fail at load."""
        if self.point not in FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {self.point!r}; expected one of {FAULT_POINTS}"
            )
        if self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; expected one of {FAULT_ACTIONS}"
            )
        triggers = [t for t in (self.nth, self.every, self.probability) if t is not None]
        if len(triggers) > 1:
            raise ValueError("at most one of nth/every/probability per rule")
        if self.nth is not None and self.nth < 1:
            raise ValueError("nth must be >= 1")
        if self.every is not None and self.every < 1:
            raise ValueError("every must be >= 1")
        if self.probability is not None and not (0.0 <= self.probability <= 1.0):
            raise ValueError("probability must be in [0, 1]")
        if self.times is not None and self.times < 1:
            raise ValueError("times must be >= 1")
        if self.seconds < 0:
            raise ValueError("seconds must be >= 0")

    @classmethod
    def from_dict(cls, data: dict) -> "FaultRule":
        """Build a rule from a schedule-file dict, rejecting unknown keys."""
        if not isinstance(data, dict):
            raise ValueError(f"fault rule must be an object, got {type(data).__name__}")
        unknown = set(data) - _RULE_KEYS
        if unknown:
            raise ValueError(f"unknown fault rule keys: {sorted(unknown)}")
        if "point" not in data or "action" not in data:
            raise ValueError("fault rule requires 'point' and 'action'")
        return cls(**data)


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable set of fault rules plus the seed that replays them."""

    rules: tuple[FaultRule, ...]
    seed: int = 0

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSchedule":
        """Parse the JSON-document form (``{"seed": ..., "rules": [...]}``)."""
        if not isinstance(data, dict):
            raise ValueError(f"fault schedule must be an object, got {type(data).__name__}")
        unknown = set(data) - {"schema_version", "seed", "rules"}
        if unknown:
            raise ValueError(f"unknown fault schedule keys: {sorted(unknown)}")
        version = data.get("schema_version", SCHEDULE_SCHEMA_VERSION)
        if version != SCHEDULE_SCHEMA_VERSION:
            raise ValueError(f"unsupported fault schedule schema_version {version!r}")
        rules = data.get("rules", [])
        if not isinstance(rules, list):
            raise ValueError("'rules' must be a list")
        return cls(
            rules=tuple(FaultRule.from_dict(rule) for rule in rules),
            seed=int(data.get("seed", 0)),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        """Parse a schedule from its JSON text."""
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: str | Path) -> "FaultSchedule":
        """Load a schedule from a JSON file."""
        return cls.from_json(Path(path).read_text())

    @classmethod
    def from_env_value(cls, value: str) -> "FaultSchedule":
        """Interpret an env-var value as inline JSON or as a file path."""
        stripped = value.strip()
        if stripped.startswith("{"):
            return cls.from_json(stripped)
        return cls.from_file(stripped)


class _RuleState:
    """Mutable per-rule hit/fire counters plus the seeded trigger RNG."""

    __slots__ = ("rule", "index", "hits", "fires", "rng")

    def __init__(self, rule: FaultRule, index: int, seed: int) -> None:
        self.rule = rule
        self.index = index
        self.hits = 0
        self.fires = 0
        # One independent, deterministic stream per rule: the same schedule
        # produces the same fire pattern in every run.
        self.rng = Random(f"{seed}:{index}")

    def should_fire(self) -> bool:
        """Record one matching hit and decide whether the rule fires on it."""
        self.hits += 1
        rule = self.rule
        if rule.times is not None and self.fires >= rule.times:
            return False
        if rule.nth is not None:
            fire = self.hits == rule.nth
        elif rule.every is not None:
            fire = self.hits % rule.every == 0
        elif rule.probability is not None:
            fire = self.rng.random() < rule.probability
        else:
            fire = True
        if fire:
            self.fires += 1
        return fire


class FaultRegistry:
    """Process-wide dispatcher: routes point hits to scheduled actions."""

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule
        self._states = [
            _RuleState(rule, index, schedule.seed)
            for index, rule in enumerate(schedule.rules)
        ]
        self._lock = threading.Lock()
        self.fired_total = 0
        self.fired_by_point: dict[str, int] = {}

    @property
    def active(self) -> bool:
        """Whether any rules are installed at all."""
        return bool(self._states)

    def snapshot(self) -> dict:
        """Observability view for ``/healthz``: fire counts per point."""
        with self._lock:
            return {
                "active": self.active,
                "fired_total": self.fired_total,
                "fired_by_point": dict(self.fired_by_point),
            }

    def hit(self, point: str, context: str = "", data: bytes | None = None) -> bytes | None:
        """Record one hit of *point*; apply any scheduled actions.

        Returns *data*, possibly corrupted by a ``corrupt`` rule.  A
        ``raise`` rule raises :class:`FaultInjected`; ``crash`` exits the
        process; ``sleep`` blocks.  Trigger bookkeeping happens under a
        lock, the actions themselves outside it.
        """
        pending: list[_RuleState] = []
        with self._lock:
            for state in self._states:
                rule = state.rule
                if rule.point != point:
                    continue
                if rule.match is not None and rule.match not in context:
                    continue
                if state.should_fire():
                    pending.append(state)
                    self.fired_total += 1
                    self.fired_by_point[point] = self.fired_by_point.get(point, 0) + 1
        for state in pending:
            data = self._apply(state, point, context, data)
        return data

    def _apply(
        self, state: _RuleState, point: str, context: str, data: bytes | None
    ) -> bytes | None:
        rule = state.rule
        self._log(point, context, rule, state.fires)
        if rule.action == "raise":
            raise FaultInjected(f"{rule.message} at {point} ({context or 'no context'})")
        if rule.action == "crash":
            os._exit(CRASH_EXIT_CODE)
        if rule.action == "sleep":
            time.sleep(rule.seconds)
            return data
        # corrupt: flip a few bytes deterministically (seeded per-fire).
        if data is None:
            return data
        return _corrupt_bytes(
            data, Random(f"{self.schedule.seed}:{state.index}:{state.fires}")
        )

    @staticmethod
    def _log(point: str, context: str, rule: FaultRule, fire_count: int) -> None:
        # Imported lazily: utils must not depend on the service layer at
        # import time (metrics is stdlib-only, but keep the layering soft).
        from repro.service.metrics import log_event

        log_event(
            "fault_injected",
            level="warning",
            point=point,
            action=rule.action,
            context=context,
            fire_count=fire_count,
        )


def _corrupt_bytes(data: bytes, rng: Random) -> bytes:
    """Flip bits at a few seeded positions; never returns the input bytes."""
    if not data:
        return b"\xde\xad"
    mutated = bytearray(data)
    for _ in range(min(4, len(mutated))):
        position = rng.randrange(len(mutated))
        mutated[position] ^= 0xFF
    if bytes(mutated) == data:
        # An even number of flips at the same position cancels out.
        mutated[0] ^= 0x01
    return bytes(mutated)


_registry: FaultRegistry | None = None
_env_checked = False
_install_lock = threading.Lock()


def install_schedule(schedule: FaultSchedule | None) -> FaultRegistry | None:
    """Install *schedule* process-wide (``None`` clears injection)."""
    global _registry, _env_checked
    with _install_lock:
        _registry = FaultRegistry(schedule) if schedule is not None else None
        _env_checked = True
        return _registry


def reset_registry() -> None:
    """Clear the registry and re-arm env loading (test isolation hook)."""
    global _registry, _env_checked
    with _install_lock:
        _registry = None
        _env_checked = False


def get_registry() -> FaultRegistry | None:
    """Return the active registry, loading ``REPRO_FAULT_SCHEDULE`` once."""
    global _registry, _env_checked
    if _env_checked:
        return _registry
    with _install_lock:
        if not _env_checked:
            value = os.environ.get(FAULT_SCHEDULE_ENV)
            if value:
                _registry = FaultRegistry(FaultSchedule.from_env_value(value))
            _env_checked = True
    return _registry


class FaultPoint:
    """A named injection point; module-level singletons in the host code.

    ``FaultPoint("journal.fsync").hit()`` is a no-op attribute check when
    no schedule is installed, so the hooks are free in production.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if name not in FAULT_POINTS:
            raise ValueError(f"unknown fault point {name!r}")
        self.name = name

    def hit(self, context: str = "", data: bytes | None = None) -> bytes | None:
        """Record one hit; returns *data* (possibly corrupted by a rule)."""
        registry = get_registry()
        if registry is None or not registry.active:
            return data
        return registry.hit(self.name, context=context, data=data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPoint({self.name!r})"
