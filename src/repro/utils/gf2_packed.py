"""Word-packed linear algebra over GF(2).

The dense kernels in :mod:`repro.utils.gf2` keep one matrix entry per
``uint8`` byte; every row operation therefore moves eight times more memory
than it needs to, and the elimination loops pay a numpy dispatch per column.
This module packs each row into ``np.uint64`` words (64 columns per word,
column ``j`` stored in bit ``j % 64`` of word ``j // 64``) so that

* a row XOR is a handful of machine-word XORs,
* a rank is a run of single-word bit tests and popcounts,
* Pauli sign bookkeeping (the Aaronson–Gottesman ``g`` function summed over
  qubits) becomes six bitwise masks and two popcounts instead of a Python
  loop over qubits.

The elimination core additionally converts packed rows to Python integers:
CPython's arbitrary-precision XOR operates on 30-bit limbs in C and, combined
with single ``bit_length`` pivot scans, beats per-column numpy dispatch by a
wide margin for the matrix sizes the compiler sweeps (hundreds to thousands
of columns).

Every public function is bit-exact with its dense counterpart: ranks, pivot
columns, reduced echelon forms, nullspace bases, particular solutions and
products are *identical* arrays, so the dense backend can serve as the oracle
in equivalence tests.  See :mod:`repro.utils.backend` for how callers select
between the two implementations.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pack_matrix",
    "unpack_matrix",
    "popcount_words",
    "packed_gf2_rank",
    "rank_of_row_ints",
    "packed_gf2_rref",
    "packed_gf2_nullspace",
    "packed_gf2_solve",
    "packed_gf2_matmul",
    "pauli_phase_terms",
    "words_per_row",
]

_WORD_BITS = 64


def words_per_row(num_cols: int) -> int:
    """Number of ``uint64`` words needed to hold ``num_cols`` bits."""
    return max(1, (int(num_cols) + _WORD_BITS - 1) // _WORD_BITS)


def _as_bits(matrix: np.ndarray) -> np.ndarray:
    """Return a uint8 copy of ``matrix`` reduced modulo 2 (2-D only)."""
    arr = np.asarray(matrix)
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got ndim={arr.ndim}")
    if arr.dtype == np.uint8:
        return arr & 1
    return (np.asarray(arr, dtype=np.int64) % 2).astype(np.uint8)


def _pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack an already-validated uint8 0/1 matrix into uint64 words."""
    n_rows, n_cols = bits.shape
    n_words = words_per_row(n_cols)
    packed_bytes = np.packbits(bits, axis=1, bitorder="little")
    buffer = np.zeros((n_rows, n_words * 8), dtype=np.uint8)
    buffer[:, : packed_bytes.shape[1]] = packed_bytes
    return buffer.view("<u8").astype(np.uint64, copy=False)


def pack_matrix(matrix: np.ndarray) -> np.ndarray:
    """Pack a 0/1 matrix of shape ``(m, n)`` into ``(m, ceil(n/64))`` words.

    Column ``j`` lands in bit ``j % 64`` of word ``j // 64`` (little-endian
    bit order), so packed rows compare and XOR exactly like the unpacked
    rows they represent.
    """
    return _pack_bits(_as_bits(matrix))


def unpack_matrix(words: np.ndarray, num_cols: int) -> np.ndarray:
    """Inverse of :func:`pack_matrix`: expand words back to a uint8 matrix."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if words.ndim != 2:
        raise ValueError(f"expected a 2-D word array, got ndim={words.ndim}")
    as_bytes = words.astype("<u8").view(np.uint8)
    bits = np.unpackbits(as_bytes, axis=1, bitorder="little")
    return bits[:, : int(num_cols)].astype(np.uint8)


def popcount_words(words: np.ndarray) -> np.ndarray:
    """Per-row popcount of a packed word array (sums over the last axis)."""
    return np.bitwise_count(words).sum(axis=-1, dtype=np.int64)


# --------------------------------------------------------------------------- #
# Integer-row elimination core
# --------------------------------------------------------------------------- #


def _rows_to_ints(words: np.ndarray) -> list[int]:
    """View each packed row as one little-endian Python integer."""
    contiguous = np.ascontiguousarray(words, dtype="<u8")
    raw = contiguous.tobytes()
    stride = contiguous.shape[1] * 8
    return [
        int.from_bytes(raw[i * stride : (i + 1) * stride], "little")
        for i in range(contiguous.shape[0])
    ]


def _ints_to_rows(values: list[int], n_words: int) -> np.ndarray:
    """Rebuild a packed ``(len(values), n_words)`` word array from integers."""
    if not values:
        return np.zeros((0, n_words), dtype=np.uint64)
    stride = n_words * 8
    raw = b"".join(value.to_bytes(stride, "little") for value in values)
    return np.frombuffer(raw, dtype="<u8").reshape(len(values), n_words).astype(
        np.uint64, copy=False
    )


def _lowest_set_bit(value: int) -> int:
    """Index of the lowest set bit of a positive integer."""
    return (value & -value).bit_length() - 1


def _int_rref(rows: list[int]) -> dict[int, int]:
    """Gauss–Jordan elimination on integer rows; returns ``{pivot_col: row}``.

    Every returned row has its lowest set bit at its pivot column and a zero
    bit at every *other* pivot column, which is exactly the (unique) reduced
    row echelon form of the input's row space.
    """
    pivots: dict[int, int] = {}
    for row in rows:
        # Clear pivot-column bits starting from the lowest set bit …
        while row:
            low = _lowest_set_bit(row)
            pivot = pivots.get(low)
            if pivot is None:
                break
            row ^= pivot
        if not row:
            continue
        low = _lowest_set_bit(row)
        # … then sweep the remaining (higher) pivot-column bits.  Stored
        # pivot rows carry no bits below their own pivot column, so each XOR
        # clears one pivot bit without disturbing anything beneath it.
        shift = low + 1
        tail = row >> shift
        while tail:
            col = _lowest_set_bit(tail) + shift
            pivot = pivots.get(col)
            if pivot is not None:
                row ^= pivot
            shift = col + 1
            tail = row >> shift
        # Reduce the established pivot rows against the new one.
        for col, pivot in pivots.items():
            if (pivot >> low) & 1:
                pivots[col] = pivot ^ row
        pivots[low] = row
    return pivots


# --------------------------------------------------------------------------- #
# Dense-compatible kernels
# --------------------------------------------------------------------------- #


def rank_of_row_ints(rows) -> int:
    """GF(2) rank of rows given as Python integers (bit ``j`` = column ``j``).

    The elimination core of :func:`packed_gf2_rank`, exposed for callers that
    already hold integer-packed rows — the cached adjacency of
    :class:`repro.graphs.graph_state.GraphState` and the incremental
    cut-rank engine — so they can rank without round-tripping through numpy.
    """
    pivots: dict[int, int] = {}
    rank = 0
    for row in rows:
        while row:
            high = row.bit_length() - 1
            pivot = pivots.get(high)
            if pivot is None:
                pivots[high] = row
                rank += 1
                break
            row ^= pivot
    return rank


def packed_gf2_rank(matrix: np.ndarray) -> int:
    """Rank of ``matrix`` over GF(2) via packed integer elimination.

    Unlike the echelon-form kernels, rank does not depend on the pivot
    order, so the elimination pivots on the *highest* set bit: that needs a
    single ``int.bit_length`` per reduction step instead of the two extra
    big-integer temporaries of a lowest-set-bit scan, and is what makes this
    the fastest kernel in the module (the cut-rank hot path).
    """
    bits = _as_bits(matrix)
    if bits.size == 0:
        return 0
    return rank_of_row_ints(_rows_to_ints(_pack_bits(bits)))


def packed_gf2_rref(matrix: np.ndarray) -> tuple[np.ndarray, list[int]]:
    """Reduced row echelon form over GF(2), identical to the dense result.

    Returns:
        ``(rref, pivot_columns)`` with the same shape, dtype and row ordering
        as :func:`repro.utils.gf2.gf2_rref`.
    """
    bits = _as_bits(matrix)
    n_rows, n_cols = bits.shape
    pivots = _int_rref(_rows_to_ints(_pack_bits(bits))) if bits.size else {}
    pivot_cols = sorted(pivots)
    n_words = words_per_row(n_cols)
    ordered = [pivots[col] for col in pivot_cols]
    ordered.extend(0 for _ in range(n_rows - len(ordered)))
    return unpack_matrix(_ints_to_rows(ordered, n_words), n_cols), pivot_cols


def packed_gf2_nullspace(matrix: np.ndarray) -> np.ndarray:
    """Basis of the right nullspace, identical to the dense construction."""
    bits = _as_bits(matrix)
    n_cols = bits.shape[1]
    pivots = _int_rref(_rows_to_ints(_pack_bits(bits))) if bits.size else {}
    pivot_cols = sorted(pivots)
    pivot_set = set(pivot_cols)
    basis_rows = []
    for free in range(n_cols):
        if free in pivot_set:
            continue
        vec = np.zeros(n_cols, dtype=np.uint8)
        vec[free] = 1
        for col in pivot_cols:
            if (pivots[col] >> free) & 1:
                vec[col] = 1
        basis_rows.append(vec)
    if not basis_rows:
        return np.zeros((0, n_cols), dtype=np.uint8)
    return np.stack(basis_rows, axis=0)


def packed_gf2_solve(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray | None:
    """Particular solution of ``matrix @ x = rhs`` (or ``None``), bit-exact
    with :func:`repro.utils.gf2.gf2_solve`."""
    bits = _as_bits(matrix)
    vec = np.array(rhs, dtype=np.int64, copy=True).reshape(-1) % 2
    if vec.shape[0] != bits.shape[0]:
        raise ValueError("rhs length does not match the number of rows")
    n_cols = bits.shape[1]
    augmented_rows = [
        row | (int(vec[i]) << n_cols)
        for i, row in enumerate(_rows_to_ints(_pack_bits(bits)))
    ]
    pivots = _int_rref(augmented_rows)
    if n_cols in pivots:
        return None
    solution = np.zeros(n_cols, dtype=np.uint8)
    for col, row in pivots.items():
        solution[col] = (row >> n_cols) & 1
    return solution


def packed_gf2_matmul(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """GF(2) matrix product computed by XOR-combining packed rows."""
    left_bits = _as_bits(left)
    right_bits = _as_bits(right)
    if left_bits.shape[1] != right_bits.shape[0]:
        raise ValueError(
            f"inner dimensions do not match: {left_bits.shape} x {right_bits.shape}"
        )
    n_cols = right_bits.shape[1]
    right_words = _pack_bits(right_bits)
    out = np.zeros((left_bits.shape[0], right_words.shape[1]), dtype=np.uint64)
    for i in range(left_bits.shape[0]):
        selected = np.nonzero(left_bits[i])[0]
        if selected.size:
            out[i] = np.bitwise_xor.reduce(right_words[selected], axis=0)
    return unpack_matrix(out, n_cols)


# --------------------------------------------------------------------------- #
# Pauli sign bookkeeping
# --------------------------------------------------------------------------- #


def pauli_phase_terms(
    source_x: np.ndarray,
    source_z: np.ndarray,
    target_x: np.ndarray,
    target_z: np.ndarray,
) -> np.ndarray:
    """Summed Aaronson–Gottesman ``g`` exponents from packed Pauli rows.

    All four arguments are packed word arrays of a common shape ``(..., W)``;
    the return value has shape ``(...)`` and equals, for each leading index,
    ``sum_j g(x1_j, z1_j, x2_j, z2_j)`` where ``(x1, z1)`` is the source row
    and ``(x2, z2)`` the target row.  Each qubit contributes ``+1``, ``-1`` or
    ``0``; the six contributing sign patterns are disjoint per bit, so two
    popcounts of OR-ed masks recover the sum exactly.
    """
    plus = (
        (source_x & source_z & ~target_x & target_z)
        | (source_x & ~source_z & target_x & target_z)
        | (~source_x & source_z & target_x & ~target_z)
    )
    minus = (
        (source_x & source_z & target_x & ~target_z)
        | (source_x & ~source_z & ~target_x & target_z)
        | (~source_x & source_z & target_x & target_z)
    )
    return popcount_words(plus) - popcount_words(minus)
