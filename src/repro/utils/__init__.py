"""Utility substrates shared across the compiler.

This subpackage intentionally contains only dependency-free building blocks:

* :mod:`repro.utils.gf2` — linear algebra over the two-element field GF(2),
  used by the entanglement/height-function computations and by the
  stabilizer canonicalisation routines; every function accepts a
  ``backend=`` argument.
* :mod:`repro.utils.gf2_packed` — the ``np.uint64`` word-packed kernels
  behind ``backend="packed"`` (bit-exact with the dense oracle).
* :mod:`repro.utils.backend` — selection of the process-wide default backend
  (``REPRO_GF2_BACKEND``, :func:`set_default_backend`, :func:`use_backend`).
* :mod:`repro.utils.misc` — small helpers (argument validation, pairing
  utilities, deterministic RNG construction) used throughout the package.
"""

from repro.utils.backend import (
    get_default_backend,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from repro.utils.gf2 import (
    gf2_gaussian_elimination,
    gf2_matmul,
    gf2_nullspace,
    gf2_rank,
    gf2_rref,
    gf2_solve,
)
from repro.utils.misc import (
    check_non_negative,
    check_positive,
    make_rng,
    pairs,
    normalize_edge,
)

__all__ = [
    "get_default_backend",
    "resolve_backend",
    "set_default_backend",
    "use_backend",
    "gf2_gaussian_elimination",
    "gf2_matmul",
    "gf2_nullspace",
    "gf2_rank",
    "gf2_rref",
    "gf2_solve",
    "check_non_negative",
    "check_positive",
    "make_rng",
    "pairs",
    "normalize_edge",
]
