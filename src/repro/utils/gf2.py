"""Linear algebra over GF(2) with a dense/packed/arena backend switch.

The compiler needs a handful of exact binary-field operations:

* the *cut rank* (connectivity function) of a graph bipartition, which equals
  the bipartite entanglement entropy of the corresponding graph state and
  therefore the minimal number of emitters required at a given point of the
  emission schedule (Li, Economou & Barnes, npj QI 2022);
* Gaussian elimination of stabilizer check matrices to compute canonical
  generator sets and to decide exact stabilizer-state equality.

Everything here operates on ``numpy`` arrays with ``dtype=np.uint8`` holding
0/1 entries.  Inputs are copied; functions never mutate their arguments.

Two interchangeable implementations back the public functions:

* ``backend="dense"`` — the straightforward ``uint8`` Gaussian elimination
  defined in this module, kept as the oracle;
* ``backend="packed"`` — the ``np.uint64`` word-packed kernels of
  :mod:`repro.utils.gf2_packed`, bit-exact with the dense path and several
  times faster from a few hundred columns on;
* ``backend="arena"`` — the preallocated word-arena kernels of
  :mod:`repro.utils.gf2_arena`, bit-exact with both and the fastest for bulk
  Gauss–Jordan elimination (rref / nullspace / solve) from roughly a hundred
  columns on, because the carrier XOR batches across every row at once.

``backend=None`` (the default everywhere) defers to
:func:`repro.utils.backend.get_default_backend`; on the ``packed`` default
the elimination-style kernels additionally auto-select the arena per
instance once a matrix reaches :func:`repro.utils.backend.arena_auto_threshold`
columns (the measured crossover, tracked in ``BENCH_emitters.json``).
:func:`gf2_gaussian_elimination` is the one dense-only exception: its
non-reduced echelon output depends on the elimination order and is therefore
not canonical, so only the dense implementation defines it.
"""

from __future__ import annotations

import numpy as np

from repro.utils.backend import ARENA, PACKED, arena_auto_threshold, resolve_backend
from repro.utils import gf2_arena, gf2_packed

__all__ = [
    "gf2_gaussian_elimination",
    "gf2_matmul",
    "gf2_nullspace",
    "gf2_rank",
    "gf2_rref",
    "gf2_solve",
]


def _elimination_backend(chosen: str, matrix: np.ndarray) -> str:
    """Per-instance auto-selection for the bulk Gauss–Jordan kernels.

    The arena backend wins on full eliminations (rref / nullspace / solve)
    once matrices reach :func:`arena_auto_threshold` columns, because the
    carrier XOR batches across every row in one vectorised call; below the
    threshold (and on single-row online updates) the packed big-int rows have
    lower fixed overhead.  Only the ``packed`` default is upgraded — an
    explicit ``backend=`` argument is always honoured.
    """
    if chosen != PACKED:
        return chosen
    arr = np.asarray(matrix)
    if arr.ndim == 2 and arr.shape[1] >= arena_auto_threshold():
        return ARENA
    return chosen


def _as_gf2(matrix: np.ndarray) -> np.ndarray:
    """Return a uint8 copy of ``matrix`` reduced modulo 2.

    Raises:
        ValueError: if ``matrix`` is not two-dimensional.
    """
    arr = np.array(matrix, dtype=np.int64, copy=True)
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got ndim={arr.ndim}")
    return (arr % 2).astype(np.uint8)


def gf2_gaussian_elimination(matrix: np.ndarray) -> tuple[np.ndarray, list[int]]:
    """Row-reduce ``matrix`` over GF(2) to row echelon form.

    Args:
        matrix: a 2-D array of 0/1 entries (any integer dtype accepted).

    Returns:
        A pair ``(echelon, pivot_columns)`` where ``echelon`` is the row
        echelon form (not necessarily *reduced*) and ``pivot_columns`` lists
        the pivot column index of each non-zero row, in order.
    """
    mat = _as_gf2(matrix)
    n_rows, n_cols = mat.shape
    pivot_cols: list[int] = []
    row = 0
    for col in range(n_cols):
        if row >= n_rows:
            break
        pivot_candidates = np.nonzero(mat[row:, col])[0]
        if pivot_candidates.size == 0:
            continue
        pivot = row + int(pivot_candidates[0])
        if pivot != row:
            mat[[row, pivot]] = mat[[pivot, row]]
        below = np.nonzero(mat[row + 1:, col])[0]
        if below.size:
            mat[row + 1 + below] ^= mat[row]
        pivot_cols.append(col)
        row += 1
    return mat, pivot_cols


def gf2_rref(
    matrix: np.ndarray, backend: str | None = None
) -> tuple[np.ndarray, list[int]]:
    """Compute the *reduced* row echelon form of ``matrix`` over GF(2).

    Returns:
        ``(rref, pivot_columns)``; rows above each pivot are cleared as well,
        so the result is unique for a given row space.
    """
    chosen = _elimination_backend(resolve_backend(backend), matrix)
    if chosen == PACKED:
        return gf2_packed.packed_gf2_rref(matrix)
    if chosen == ARENA:
        return gf2_arena.arena_gf2_rref(matrix)
    mat, pivot_cols = gf2_gaussian_elimination(matrix)
    for row_index, col in enumerate(pivot_cols):
        above = np.nonzero(mat[:row_index, col])[0]
        if above.size:
            mat[above] ^= mat[row_index]
    return mat, pivot_cols


def gf2_rank(matrix: np.ndarray, backend: str | None = None) -> int:
    """Return the rank of ``matrix`` over GF(2).

    The rank of the adjacency submatrix between a vertex subset ``A`` and its
    complement is the *cut rank* of ``A`` and equals the bipartite
    entanglement entropy (in bits) of the graph state across that cut.
    """
    chosen = resolve_backend(backend)
    if chosen == PACKED:
        return gf2_packed.packed_gf2_rank(matrix)
    if chosen == ARENA:
        return gf2_arena.arena_gf2_rank(matrix)
    mat = _as_gf2(matrix)
    if mat.size == 0:
        return 0
    _, pivots = gf2_gaussian_elimination(mat)
    return len(pivots)


def gf2_matmul(
    left: np.ndarray, right: np.ndarray, backend: str | None = None
) -> np.ndarray:
    """Multiply two GF(2) matrices and reduce the product modulo 2."""
    chosen = resolve_backend(backend)
    if chosen == PACKED:
        return gf2_packed.packed_gf2_matmul(left, right)
    if chosen == ARENA:
        return gf2_arena.arena_gf2_matmul(left, right)
    left_m = _as_gf2(left)
    right_m = _as_gf2(right)
    if left_m.shape[1] != right_m.shape[0]:
        raise ValueError(
            f"inner dimensions do not match: {left_m.shape} x {right_m.shape}"
        )
    product = (left_m.astype(np.int64) @ right_m.astype(np.int64)) % 2
    return product.astype(np.uint8)


def gf2_solve(
    matrix: np.ndarray, rhs: np.ndarray, backend: str | None = None
) -> np.ndarray | None:
    """Solve ``matrix @ x = rhs`` over GF(2).

    Args:
        matrix: coefficient matrix of shape ``(m, n)``.
        rhs: right-hand-side vector of length ``m``.
        backend: GF(2) backend override (``None`` = process default).

    Returns:
        One particular solution vector of length ``n`` (dtype uint8), or
        ``None`` when the system is inconsistent.
    """
    chosen = _elimination_backend(resolve_backend(backend), matrix)
    if chosen == PACKED:
        return gf2_packed.packed_gf2_solve(matrix, rhs)
    if chosen == ARENA:
        return gf2_arena.arena_gf2_solve(matrix, rhs)
    mat = _as_gf2(matrix)
    vec = np.array(rhs, dtype=np.int64, copy=True).reshape(-1, 1) % 2
    if vec.shape[0] != mat.shape[0]:
        raise ValueError("rhs length does not match the number of rows")
    augmented = np.concatenate([mat, vec.astype(np.uint8)], axis=1)
    reduced, pivots = gf2_rref(augmented)
    n_cols = mat.shape[1]
    # Inconsistent if a pivot lands in the augmented column.
    if n_cols in pivots:
        return None
    solution = np.zeros(n_cols, dtype=np.uint8)
    for row_index, col in enumerate(pivots):
        solution[col] = reduced[row_index, n_cols]
    return solution


def gf2_nullspace(matrix: np.ndarray, backend: str | None = None) -> np.ndarray:
    """Return a basis of the right nullspace of ``matrix`` over GF(2).

    Returns:
        An array of shape ``(k, n)`` whose rows form a basis of
        ``{x : matrix @ x = 0}``.  ``k`` may be zero.
    """
    chosen = _elimination_backend(resolve_backend(backend), matrix)
    if chosen == PACKED:
        return gf2_packed.packed_gf2_nullspace(matrix)
    if chosen == ARENA:
        return gf2_arena.arena_gf2_nullspace(matrix)
    mat = _as_gf2(matrix)
    n_cols = mat.shape[1]
    reduced, pivots = gf2_rref(mat)
    free_cols = [c for c in range(n_cols) if c not in pivots]
    basis_rows = []
    for free in free_cols:
        vec = np.zeros(n_cols, dtype=np.uint8)
        vec[free] = 1
        for row_index, pivot_col in enumerate(pivots):
            if reduced[row_index, free]:
                vec[pivot_col] = 1
        basis_rows.append(vec)
    if not basis_rows:
        return np.zeros((0, n_cols), dtype=np.uint8)
    return np.stack(basis_rows, axis=0)
