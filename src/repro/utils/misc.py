"""Small shared helpers: argument validation, RNG construction, iteration."""

from __future__ import annotations

from itertools import combinations
from typing import Hashable, Iterable, Iterator

import numpy as np

__all__ = [
    "check_non_negative",
    "check_positive",
    "iter_bits",
    "make_rng",
    "pairs",
    "normalize_edge",
]


def iter_bits(value: int) -> Iterator[int]:
    """Yield the set-bit positions of ``value`` in ascending order.

    The workhorse of the bitset fast paths: adjacency rows are stored as
    arbitrary-precision integers, and iterating their set bits enumerates
    neighbours in index order.
    """
    while value:
        low = value & -value
        yield low.bit_length() - 1
        value ^= low


def check_positive(name: str, value: float) -> None:
    """Raise :class:`ValueError` unless ``value`` is strictly positive."""
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_non_negative(name: str, value: float) -> None:
    """Raise :class:`ValueError` unless ``value`` is >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Build a :class:`numpy.random.Generator` from a seed or pass one through.

    Accepting either form lets every stochastic component in the package take
    a ``seed`` argument while remaining composable (a caller holding a
    generator can share it).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def pairs(items: Iterable[Hashable]) -> Iterator[tuple[Hashable, Hashable]]:
    """Yield all unordered pairs of distinct elements of ``items``."""
    return combinations(items, 2)


def normalize_edge(u: Hashable, v: Hashable) -> tuple[Hashable, Hashable]:
    """Return the canonical (sorted) representation of an undirected edge.

    Vertices are compared by ``repr`` when direct comparison fails (mixed
    types), so the result is deterministic for any hashable labels.
    """
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)
