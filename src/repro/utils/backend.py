"""Selection of the GF(2) compute backend.

Two backends implement the exact binary-field kernels that the compiler's hot
paths (cut rank, stabilizer canonicalisation, circuit verification) run on:

* ``"dense"`` — the original ``uint8`` implementation in
  :mod:`repro.utils.gf2`.  Simple, thoroughly tested, and kept as the oracle
  that the fast path is checked against.
* ``"packed"`` — the word-packed implementation in
  :mod:`repro.utils.gf2_packed`: rows live in ``np.uint64`` words, row
  elimination is XOR of machine words and ranks come out of popcounts.  It is
  bit-exact with the dense backend and several times faster from a few
  hundred columns on.

The process-wide default is ``"packed"`` and can be pinned with the
``REPRO_GF2_BACKEND`` environment variable, :func:`set_default_backend`, or
temporarily with the :func:`use_backend` context manager.  Every public
function that consumes a backend also accepts an explicit ``backend=``
argument which takes precedence over the default.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "BACKENDS",
    "DENSE",
    "PACKED",
    "get_default_backend",
    "resolve_backend",
    "set_default_backend",
    "use_backend",
]

DENSE = "dense"
PACKED = "packed"

#: All recognised backend names.
BACKENDS = (DENSE, PACKED)


def _initial_backend() -> str:
    raw = os.environ.get("REPRO_GF2_BACKEND")
    if raw is None:
        return PACKED
    value = raw.strip().lower()
    if value not in BACKENDS:
        import warnings

        warnings.warn(
            f"ignoring unrecognised REPRO_GF2_BACKEND={raw!r}; "
            f"expected one of {BACKENDS}, using {PACKED!r}",
            RuntimeWarning,
            stacklevel=2,
        )
        return PACKED
    return value


_default_backend: str = _initial_backend()


def get_default_backend() -> str:
    """Return the process-wide default backend name."""
    return _default_backend


def set_default_backend(backend: str) -> str:
    """Set the process-wide default backend; returns the previous default.

    Raises:
        ValueError: if ``backend`` is not a recognised backend name.
    """
    global _default_backend
    previous = _default_backend
    _default_backend = resolve_backend(backend)
    return previous


def resolve_backend(backend: str | None) -> str:
    """Normalise a ``backend=`` argument: ``None`` means the current default.

    Raises:
        ValueError: if ``backend`` is neither ``None`` nor a recognised name.
    """
    if backend is None:
        return _default_backend
    name = str(backend).strip().lower()
    if name not in BACKENDS:
        raise ValueError(
            f"unknown GF(2) backend {backend!r}; expected one of {BACKENDS}"
        )
    return name


@contextmanager
def use_backend(backend: str | None) -> Iterator[str]:
    """Temporarily switch the default backend within a ``with`` block.

    ``None`` keeps the current default (the context manager is then a no-op),
    which lets callers write ``with use_backend(config.gf2_backend): ...``
    without special-casing unset configuration.
    """
    if backend is None:
        yield _default_backend
        return
    previous = set_default_backend(backend)
    try:
        yield _default_backend
    finally:
        set_default_backend(previous)
