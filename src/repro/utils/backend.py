"""Selection of the GF(2) compute backend.

Three backends implement the exact binary-field kernels that the compiler's
hot paths (cut rank, stabilizer canonicalisation, circuit verification) run
on:

* ``"dense"`` — the original ``uint8`` implementation in
  :mod:`repro.utils.gf2`.  Simple, thoroughly tested, and kept as the oracle
  that the fast paths are checked against.
* ``"packed"`` — the word-packed implementation in
  :mod:`repro.utils.gf2_packed`: rows live as arbitrary-precision Python
  integers (or ``np.uint64`` words at the array boundary), row elimination is
  XOR of machine words and ranks come out of popcounts.  Bit-exact with the
  dense backend and several times faster from a few hundred columns on.
* ``"arena"`` — the array-arena implementation in
  :mod:`repro.utils.gf2_arena`: rows live in a preallocated 2-D ``np.uint64``
  arena, row updates are vectorised ``np.bitwise_xor`` and rule queries are
  ``np.bitwise_count`` popcounts.  Bit-exact with both other backends and the
  fastest at bulk Gauss–Jordan elimination from about a hundred columns on,
  because the carrier XOR batches across every row in one vectorised call
  (the ``packed`` default hands those kernels to the arena automatically past
  :func:`arena_auto_threshold` columns).

The process-wide default is ``"packed"`` and can be pinned with the
``REPRO_GF2_BACKEND`` environment variable, :func:`set_default_backend`, or
temporarily with the :func:`use_backend` context manager.  Every public
function that consumes a backend also accepts an explicit ``backend=``
argument which takes precedence over the default.  The environment variable
is validated lazily, at the first resolve, so importing this module never
emits warnings on its own.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "ARENA",
    "BACKENDS",
    "DENSE",
    "PACKED",
    "arena_auto_threshold",
    "get_default_backend",
    "resolve_backend",
    "set_default_backend",
    "use_backend",
]

DENSE = "dense"
PACKED = "packed"
ARENA = "arena"

#: All recognised backend names.
BACKENDS = (DENSE, PACKED, ARENA)

#: Default matrix width (columns) at which the ``packed`` default hands a
#: *bulk elimination* (rref / nullspace / solve) to the arena implementation.
#: Below it CPython's big-int limb XOR wins on fixed overhead; above it the
#: arena's vectorised carrier XOR — one numpy call per pivot, batched across
#: every row — pulls ahead (measured ~2x at 256 columns, ~4x at 1024).  The
#: shipped default tracks the measured crossover in ``BENCH_emitters.json``
#: (``arena_results``) and can be pinned with ``REPRO_GF2_ARENA_THRESHOLD``.
#: Single-row online updates (the reduction states, the incremental cut-rank
#: sweep) are *not* auto-upgraded: per-row work has no batching to win on, so
#: the packed big-int rows stay faster there at every measured size — the
#: arena variants of those paths run only when pinned explicitly.
DEFAULT_ARENA_THRESHOLD = 128


def arena_auto_threshold() -> int:
    """Matrix width at which auto-selection switches ``packed`` to ``arena``.

    Reads ``REPRO_GF2_ARENA_THRESHOLD`` on every call (the value is a single
    ``int`` parse, and re-reading keeps tests and notebooks free to tweak the
    knob without reloading modules).  Unparseable values fall back to the
    default; ``0`` routes every bulk elimination to the arena, a very large
    value disables auto-selection.
    """
    raw = os.environ.get("REPRO_GF2_ARENA_THRESHOLD")
    if raw is None:
        return DEFAULT_ARENA_THRESHOLD
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_ARENA_THRESHOLD

#: Sentinel meaning "the environment has not been consulted yet".
_UNRESOLVED = object()

_default_backend: str | object = _UNRESOLVED


def _backend_from_env() -> str:
    """Read ``REPRO_GF2_BACKEND`` once, warning on unrecognised values."""
    raw = os.environ.get("REPRO_GF2_BACKEND")
    if raw is None:
        return PACKED
    value = raw.strip().lower()
    if value not in BACKENDS:
        import warnings

        warnings.warn(
            f"ignoring unrecognised REPRO_GF2_BACKEND={raw!r}; "
            f"expected one of {BACKENDS}, using {PACKED!r}",
            RuntimeWarning,
            stacklevel=3,
        )
        return PACKED
    return value


def _current_default() -> str:
    global _default_backend
    if _default_backend is _UNRESOLVED:
        _default_backend = _backend_from_env()
    return _default_backend  # type: ignore[return-value]


def get_default_backend() -> str:
    """Return the process-wide default backend name."""
    return _current_default()


def set_default_backend(backend: str) -> str:
    """Set the process-wide default backend; returns the previous default.

    Raises:
        ValueError: if ``backend`` is not a recognised backend name.
    """
    global _default_backend
    previous = _current_default()
    _default_backend = resolve_backend(backend)
    return previous


def resolve_backend(backend: str | None) -> str:
    """Normalise a ``backend=`` argument: ``None`` means the current default.

    Raises:
        ValueError: if ``backend`` is neither ``None`` nor a recognised name.
    """
    if backend is None:
        return _current_default()
    name = str(backend).strip().lower()
    if name not in BACKENDS:
        raise ValueError(
            f"unknown GF(2) backend {backend!r}; expected one of {BACKENDS}"
        )
    return name


@contextmanager
def use_backend(backend: str | None) -> Iterator[str]:
    """Temporarily switch the default backend within a ``with`` block.

    ``None`` keeps the current default (the context manager is then a no-op),
    which lets callers write ``with use_backend(config.gf2_backend): ...``
    without special-casing unset configuration.
    """
    if backend is None:
        yield _current_default()
        return
    previous = set_default_backend(backend)
    try:
        yield _current_default()
    finally:
        set_default_backend(previous)
