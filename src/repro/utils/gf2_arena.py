"""Arena-backed linear algebra over GF(2).

The ``packed`` backend (:mod:`repro.utils.gf2_packed`) stores each matrix row
as one arbitrary-precision Python integer; row elimination is fast, but every
row operation still allocates a fresh ``int`` object and the per-row Python
dispatch dominates once matrices reach a few thousand columns.  This module
keeps the whole matrix in a single preallocated 2-D ``np.uint64`` **arena**
(column ``j`` in bit ``j % 64`` of word ``j // 64``, identical to
:func:`repro.utils.gf2_packed.pack_matrix`) so that

* a row XOR is one vectorised ``np.bitwise_xor`` over a word slice,
* eliminating a column from every remaining row is a single fancy-indexed
  XOR of the pivot row into the rows that carry the bit,
* popcounts batch over the whole arena via ``np.bitwise_count``.

No per-row Python objects are created during elimination, which is what makes
this the fastest backend for large matrices; for small ones the fixed numpy
dispatch overhead loses to the big-int core, which is why
:mod:`repro.utils.backend` keeps ``packed`` as the default and callers switch
per instance at a measured crossover (see ``arena_results`` in
``BENCH_emitters.json``).

Every public function is bit-exact with its dense and packed counterparts:
ranks, pivot columns, reduced echelon forms, nullspace bases, particular
solutions and products are *identical* arrays, so the established oracle
pattern (dense as ground truth) extends unchanged to this backend.
"""

from __future__ import annotations

import numpy as np

from repro.utils.gf2_packed import (
    pack_matrix,
    unpack_matrix,
    words_per_row,
)

__all__ = [
    "arena_gf2_rank",
    "arena_gf2_rref",
    "arena_gf2_nullspace",
    "arena_gf2_solve",
    "arena_gf2_matmul",
    "bits_of_words",
    "highest_bit_of_words",
    "rank_of_word_rows",
    "zeros_arena",
]

_WORD_BITS = 64


def zeros_arena(num_rows: int, num_cols: int) -> np.ndarray:
    """Preallocate an all-zero ``(num_rows, words_per_row(num_cols))`` arena."""
    return np.zeros((int(num_rows), words_per_row(num_cols)), dtype=np.uint64)


def bits_of_words(words: np.ndarray) -> np.ndarray:
    """Ascending set-bit indices of a packed row (1-D word array)."""
    as_bytes = np.ascontiguousarray(words, dtype="<u8").view(np.uint8)
    return np.nonzero(np.unpackbits(as_bytes, bitorder="little"))[0]


def highest_bit_of_words(words: np.ndarray) -> int:
    """Index of the highest set bit of a packed row, or ``-1`` if zero."""
    nonzero = np.nonzero(words)[0]
    if nonzero.size == 0:
        return -1
    word = int(nonzero[-1])
    return word * _WORD_BITS + int(words[word]).bit_length() - 1


def _word_bit(col: int) -> tuple[int, np.uint64]:
    """``(word index, single-bit mask)`` addressing column ``col``."""
    return col // _WORD_BITS, np.uint64(1 << (col % _WORD_BITS))


def _gauss_jordan(arena: np.ndarray, num_cols: int) -> list[int]:
    """In-place Gauss–Jordan over the arena; returns the pivot columns.

    Sweeps columns in ascending order, swapping a pivot row up and clearing
    the pivot column from every other row with one fancy-indexed XOR.  On
    return the first ``len(pivots)`` rows are the (unique) reduced row
    echelon form ordered by pivot column; the remaining rows are zero —
    exactly the layout of :func:`repro.utils.gf2.gf2_rref`.
    """
    num_rows = arena.shape[0]
    pivot_cols: list[int] = []
    rank = 0
    for col in range(num_cols):
        if rank == num_rows:
            break
        word, bit = _word_bit(col)
        candidates = np.nonzero(arena[rank:, word] & bit)[0]
        if candidates.size == 0:
            continue
        pivot = rank + int(candidates[0])
        if pivot != rank:
            arena[[rank, pivot]] = arena[[pivot, rank]]
        carriers = np.nonzero(arena[:, word] & bit)[0]
        carriers = carriers[carriers != rank]
        if carriers.size:
            arena[carriers] ^= arena[rank]
        pivot_cols.append(col)
        rank += 1
    return pivot_cols


def rank_of_word_rows(arena: np.ndarray) -> int:
    """GF(2) rank of a packed word-row arena (the rows are not modified)."""
    if arena.size == 0:
        return 0
    work = np.array(arena, dtype=np.uint64, copy=True)
    rank = 0
    num_rows = work.shape[0]
    for word in range(work.shape[1]):
        while rank < num_rows:
            column = work[rank:, word]
            carriers = np.nonzero(column)[0]
            if carriers.size == 0:
                break
            # Pivot on the lowest set bit of the first nonzero row in this
            # word: rank is pivot-order independent, so any choice works.
            pivot = rank + int(carriers[0])
            value = work[pivot, word]
            bit = value & (~value + np.uint64(1))  # lowest set bit
            if pivot != rank:
                work[[rank, pivot]] = work[[pivot, rank]]
            same = np.nonzero(work[rank + 1 :, word] & bit)[0]
            if same.size:
                work[rank + 1 + same] ^= work[rank]
            rank += 1
            if rank == num_rows:
                return rank
    return rank


def arena_gf2_rank(matrix: np.ndarray) -> int:
    """Rank of ``matrix`` over GF(2) via arena elimination."""
    packed = pack_matrix(matrix)
    if packed.size == 0:
        return 0
    return rank_of_word_rows(packed)


def arena_gf2_rref(matrix: np.ndarray) -> tuple[np.ndarray, list[int]]:
    """Reduced row echelon form over GF(2), identical to the dense result.

    Returns:
        ``(rref, pivot_columns)`` with the same shape, dtype and row ordering
        as :func:`repro.utils.gf2.gf2_rref`.
    """
    packed = pack_matrix(matrix)
    num_cols = np.asarray(matrix).shape[1]
    pivot_cols = _gauss_jordan(packed, num_cols) if packed.size else []
    return unpack_matrix(packed, num_cols), pivot_cols


def arena_gf2_nullspace(matrix: np.ndarray) -> np.ndarray:
    """Basis of the right nullspace, identical to the dense construction."""
    rref, pivot_cols = arena_gf2_rref(matrix)
    num_cols = rref.shape[1]
    pivot_set = set(pivot_cols)
    basis_rows = []
    for free in range(num_cols):
        if free in pivot_set:
            continue
        vec = np.zeros(num_cols, dtype=np.uint8)
        vec[free] = 1
        for rank_index, col in enumerate(pivot_cols):
            if rref[rank_index, free]:
                vec[col] = 1
        basis_rows.append(vec)
    if not basis_rows:
        return np.zeros((0, num_cols), dtype=np.uint8)
    return np.stack(basis_rows, axis=0)


def arena_gf2_solve(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray | None:
    """Particular solution of ``matrix @ x = rhs`` (or ``None``), bit-exact
    with :func:`repro.utils.gf2.gf2_solve`."""
    bits = np.asarray(matrix)
    vec = np.array(rhs, dtype=np.int64, copy=True).reshape(-1) % 2
    if vec.shape[0] != bits.shape[0]:
        raise ValueError("rhs length does not match the number of rows")
    num_cols = bits.shape[1]
    augmented = np.concatenate(
        [np.asarray(bits, dtype=np.int64) % 2, vec.reshape(-1, 1)], axis=1
    ).astype(np.uint8)
    packed = pack_matrix(augmented)
    pivot_cols = _gauss_jordan(packed, num_cols + 1) if packed.size else []
    if num_cols in pivot_cols:
        return None
    rref = unpack_matrix(packed, num_cols + 1)
    solution = np.zeros(num_cols, dtype=np.uint8)
    for rank_index, col in enumerate(pivot_cols):
        solution[col] = rref[rank_index, num_cols]
    return solution


def arena_gf2_matmul(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """GF(2) matrix product computed by XOR-combining arena rows."""
    left_bits = (np.asarray(left, dtype=np.int64) % 2).astype(np.uint8)
    right_bits = (np.asarray(right, dtype=np.int64) % 2).astype(np.uint8)
    if left_bits.shape[1] != right_bits.shape[0]:
        raise ValueError(
            f"inner dimensions do not match: {left_bits.shape} x {right_bits.shape}"
        )
    num_cols = right_bits.shape[1]
    right_words = pack_matrix(right_bits)
    out = np.zeros((left_bits.shape[0], right_words.shape[1]), dtype=np.uint64)
    for i in range(left_bits.shape[0]):
        selected = np.nonzero(left_bits[i])[0]
        if selected.size:
            out[i] = np.bitwise_xor.reduce(right_words[selected], axis=0)
    return unpack_matrix(out, num_cols)
