"""Anytime portfolio compilation with deadlines and per-instance configuration.

The static knobs of :class:`repro.core.config.CompilerConfig` make every
request pay for one fixed strategy.  This module races a small *portfolio*
of candidate configurations ("rungs") in increasing cost order instead:

1. ``natural`` — the cheapest strategy (natural ordering, cached-leaf
   reuse through the subgraph compile cache).  Always runs, so the
   portfolio always returns a result and is *never worse than the natural
   baseline* at any deadline.
2. ``greedy`` — the peak-height descent ordering search.
3. ``anneal`` — simulated-annealing refinement with an iteration count
   chosen per instance by the configuration selector.
4. ``alt-partition`` — an alternate partition shape (the no-LC
   partitioning), which wins on graphs whose stem structure the LC stage
   makes worse.
5. ``exact-partition`` — the branch-and-bound MIP partitioning, raced only
   on small instances where it is tractable.

The rung list and its order are a deterministic function of cheap instance
features (:class:`InstanceFeatures`: size, degree profile, density, zoo
family) computed by the *configuration selector*
(:func:`plan_portfolio`), which records a decision trace so every choice is
auditable — the dynamic-algorithm-configuration theme of the CANDID DAC /
DAC-RL line applied to graph-state compilation.

Anytime semantics
-----------------

:meth:`PortfolioCompiler.compile` supports two budget modes:

* ``deadline_ms`` — wall-clock: rung 0 always runs; before each further
  rung the compiler checks ``elapsed + predicted rung cost <= deadline``
  (the prediction extrapolates from the rungs already timed), so the
  overshoot past the deadline is bounded by one mispredicted rung.
* ``budget`` — step-counted: run exactly the first ``budget`` rungs.
  Fully deterministic (no wall clock involved), which is what the
  differential test harness and reproducible experiments use.

Because budgets select a *prefix* of the same deterministic rung list and
the winner is the lexicographic minimum of
``(#emitter-emitter CNOTs, average photon-loss duration, duration)`` over
the rungs that ran, quality is monotonically non-degrading as the budget
(or deadline) grows, and identical budgets yield identical winning
circuits across runs and across the ``packed``/``dense`` backends (the
backends are bit-identical by construction).

Rungs that the budget skipped are carried on the result as *pending*; they
can be refined synchronously (:meth:`PortfolioCompiler.refine`) or handed
to the process-wide :class:`BackgroundRefiner`, which compiles them off
the request path.  Every rung compile runs with the subgraph compile cache
enabled, so background refinement warms the cache for future requests —
the fleet gets better under sustained load — and improvements found after
the response are counted in :func:`refinement_stats` (surfaced through the
service ``/healthz`` and the fleet ``/metrics``).
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field

from repro.core.compiler import CompilationResult, EmitterCompiler
from repro.core.config import CompilerConfig
from repro.graphs.graph_state import GraphState

__all__ = [
    "BackgroundRefiner",
    "InstanceFeatures",
    "PortfolioCompiler",
    "PortfolioPlan",
    "PortfolioResult",
    "RungOutcome",
    "RungSpec",
    "compile_anytime",
    "get_background_refiner",
    "plan_portfolio",
    "quality_key",
    "refinement_stats",
    "reset_refinement_stats",
]

#: The lexicographic anytime objective, matching
#: :func:`repro.core.plan_scoring.score_sequence` and the recombination
#: stage of the compiler.
QualityKey = tuple[float, float, float]

#: Safety factor applied to the largest observed rung time when predicting
#: whether the next rung still fits inside the wall-clock deadline.
RUNG_COST_GROWTH = 1.5


def quality_key(result: CompilationResult) -> QualityKey:
    """The anytime objective of a compilation result.

    Returns ``(num_emitter_emitter_cnots, average_photon_loss_duration,
    duration)`` — lower is better, compared lexicographically.
    """
    metrics = result.metrics
    return (
        float(metrics.num_emitter_emitter_cnots),
        float(metrics.average_photon_loss_duration),
        float(metrics.duration),
    )


# --------------------------------------------------------------------------- #
# Instance features and the configuration selector
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class InstanceFeatures:
    """Cheap graph features the configuration selector keys on.

    All O(V + E) to compute — the selector must cost nothing compared to a
    single rung compile.
    """

    num_vertices: int
    num_edges: int
    density: float
    max_degree: int
    mean_degree: float
    family: str | None = None

    @classmethod
    def from_graph(
        cls, graph: GraphState, family: str | None = None
    ) -> "InstanceFeatures":
        """Extract the features of ``graph`` (``family`` is optional context)."""
        n = graph.num_vertices
        m = graph.num_edges
        degrees = [graph.degree(v) for v in graph.vertices()]
        max_degree = max(degrees, default=0)
        mean_degree = (sum(degrees) / n) if n else 0.0
        possible = n * (n - 1) / 2
        return cls(
            num_vertices=n,
            num_edges=m,
            density=(m / possible) if possible else 0.0,
            max_degree=max_degree,
            mean_degree=mean_degree,
            family=family,
        )

    def as_dict(self) -> dict:
        """JSON-serialisable view (recorded on the decision trace)."""
        return {
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "density": self.density,
            "max_degree": self.max_degree,
            "mean_degree": self.mean_degree,
            "family": self.family,
        }


@dataclass(frozen=True)
class RungSpec:
    """One candidate configuration of the portfolio.

    Parameters
    ----------
    name : str
        Stable identifier (``"natural"``, ``"greedy"``, ``"anneal"``,
        ``"alt-partition"``, ``"exact-partition"``).
    overrides : tuple[tuple[str, object], ...]
        :class:`CompilerConfig` fields this rung replaces, as sorted
        ``(name, value)`` pairs (hashable, JSON-friendly).
    reason : str
        Why the selector included this rung (recorded on the trace).
    """

    name: str
    overrides: tuple[tuple[str, object], ...]
    reason: str

    def config(self, base: CompilerConfig) -> CompilerConfig:
        """The rung's compiler configuration on top of ``base``."""
        return base.with_overrides(**dict(self.overrides))


@dataclass(frozen=True)
class PortfolioPlan:
    """The selector's output: ordered rungs plus the recorded decision trace."""

    features: InstanceFeatures
    rungs: tuple[RungSpec, ...]
    decision_trace: tuple[dict, ...]


def _anneal_iterations(features: InstanceFeatures) -> tuple[int, str]:
    """Pick the anneal iteration count for an instance (with the reason)."""
    n = max(1, features.num_vertices)
    base = 1600 // max(1, n // 8)
    iterations = max(40, min(300, base))
    reason = f"~1600/(n/8) proposals capped to [40, 300] at n={n}"
    if features.density > 0.25:
        iterations = min(300, int(iterations * 1.5))
        reason += f"; +50% for dense graph (density {features.density:.2f})"
    if features.family in ("ghz", "steane", "star", "linear"):
        iterations = max(40, iterations // 2)
        reason += f"; halved for structured family {features.family!r}"
    return iterations, reason


def plan_portfolio(
    features: InstanceFeatures, config: CompilerConfig
) -> PortfolioPlan:
    """The per-instance configuration selector.

    Builds the deterministic rung list for one instance — which ordering
    strategies to race, how many anneal iterations, and which partition
    heuristic — from ``features``, recording one trace entry per decision.

    Parameters
    ----------
    features : InstanceFeatures
        Cheap features of the target graph.
    config : CompilerConfig
        The request's base configuration (rung overrides stack on top).

    Returns
    -------
    PortfolioPlan
        Rungs in increasing expected cost order plus the decision trace.
    """
    n = features.num_vertices
    rungs: list[RungSpec] = []
    trace: list[dict] = [{"decision": "features", **features.as_dict()}]

    def add(name: str, reason: str, **overrides) -> None:
        rungs.append(
            RungSpec(
                name=name,
                overrides=tuple(sorted(overrides.items())),
                reason=reason,
            )
        )
        trace.append(
            {"decision": "rung", "name": name, "reason": reason, **overrides}
        )

    add(
        "natural",
        "deadline floor: cheapest strategy, always runs first",
        ordering_strategy="natural",
    )
    if n >= 3:
        add(
            "greedy",
            f"peak-height descent pays off from n={n} >= 3",
            ordering_strategy="greedy",
        )
    else:
        trace.append(
            {
                "decision": "skip",
                "name": "greedy",
                "reason": f"trivial instance (n={n} < 3)",
            }
        )
    if n >= 4:
        iterations, why = _anneal_iterations(features)
        add(
            "anneal",
            why,
            ordering_strategy="anneal",
            ordering_iterations=iterations,
        )
    else:
        trace.append(
            {
                "decision": "skip",
                "name": "anneal",
                "reason": f"trivial instance (n={n} < 4)",
            }
        )
    if config.lc_budget > 0 and n > config.max_subgraph_size:
        add(
            "alt-partition",
            "race the no-LC partition shape against the LC-assisted one",
            lc_budget=0,
            ordering_strategy="greedy",
        )
    else:
        trace.append(
            {
                "decision": "skip",
                "name": "alt-partition",
                "reason": "single-block or LC already disabled",
            }
        )
    if 1 < n <= config.exact_partition_max_vertices:
        add(
            "exact-partition",
            f"MIP partitioning tractable at n={n} <= "
            f"{config.exact_partition_max_vertices}",
            partition_method="exact",
            ordering_strategy="natural",
        )
    else:
        trace.append(
            {
                "decision": "skip",
                "name": "exact-partition",
                "reason": f"n={n} outside the exact-MIP regime",
            }
        )
    return PortfolioPlan(
        features=features, rungs=tuple(rungs), decision_trace=tuple(trace)
    )


# --------------------------------------------------------------------------- #
# Results
# --------------------------------------------------------------------------- #


@dataclass
class RungOutcome:
    """What happened to one rung of the portfolio."""

    spec: RungSpec
    status: str  # "ran" | "pending"
    seconds: float = 0.0
    quality: QualityKey | None = None
    improved: bool = False

    def as_record(self) -> dict:
        """JSON-serialisable view (timing under a ``seconds_`` key)."""
        return {
            "name": self.spec.name,
            "status": self.status,
            "reason": self.spec.reason,
            "quality": list(self.quality) if self.quality is not None else None,
            "improved": self.improved,
            "seconds_rung": self.seconds,
        }


@dataclass
class PortfolioResult:
    """The anytime compiler's output: best-so-far plus full provenance."""

    result: CompilationResult
    winner: str
    quality: QualityKey
    outcomes: list[RungOutcome]
    plan: PortfolioPlan
    deadline_ms: float | None
    budget: int | None
    deadline_missed: bool
    elapsed_seconds: float

    @property
    def pending(self) -> list[RungSpec]:
        """Rungs the budget skipped (refinement candidates)."""
        return [o.spec for o in self.outcomes if o.status == "pending"]

    def as_record(self) -> dict:
        """JSON-serialisable record for job results and the service.

        With a step-counted ``budget`` everything except the ``seconds_*``
        fields is a deterministic function of the job.  With a wall-clock
        ``deadline_ms`` the set of rungs that ran (and hence
        ``deadline_missed``/``pending_rungs``) depends on machine speed —
        a cached record replays the first execution's choices, which is
        sound because every choice is a verified-correct circuit.
        """
        return {
            "winner": self.winner,
            "quality": {
                "num_emitter_emitter_cnots": self.quality[0],
                "average_photon_loss_duration": self.quality[1],
                "duration": self.quality[2],
            },
            "deadline_ms": self.deadline_ms,
            "budget": self.budget,
            "deadline_missed": self.deadline_missed,
            "seconds_elapsed": self.elapsed_seconds,
            "rungs": [outcome.as_record() for outcome in self.outcomes],
            "pending_rungs": [spec.name for spec in self.pending],
            "decision_trace": [dict(entry) for entry in self.plan.decision_trace],
        }


# --------------------------------------------------------------------------- #
# The anytime compiler
# --------------------------------------------------------------------------- #


class PortfolioCompiler:
    """Race the portfolio rungs and return the verified best-so-far.

    Parameters
    ----------
    config : CompilerConfig | None, optional
        Base configuration; rung overrides stack on top of it.  Its
        ``deadline_ms``/``portfolio_budget`` fields are the default budget
        (overridable per :meth:`compile` call).
    """

    def __init__(self, config: CompilerConfig | None = None):
        self.config = config if config is not None else CompilerConfig()

    # ------------------------------------------------------------------ #

    def compile(
        self,
        target_graph: GraphState,
        deadline_ms: float | None = None,
        budget: int | None = None,
        family: str | None = None,
    ) -> PortfolioResult:
        """Compile ``target_graph`` under the anytime budget.

        Parameters
        ----------
        target_graph : GraphState
            The photonic graph state to generate.
        deadline_ms : float | None, optional
            Wall-clock deadline; ``None`` falls back to
            ``config.deadline_ms``.
        budget : int | None, optional
            Step-counted rung budget (deterministic); ``None`` falls back
            to ``config.portfolio_budget``.  When both budgets apply, both
            constrain the run.
        family : str | None, optional
            Zoo family of the graph, if known (a selector feature).

        Returns
        -------
        PortfolioResult
            The winning (lowest quality key) compilation plus per-rung
            outcomes, the decision trace and the pending-rung list.
        """
        deadline_ms = deadline_ms if deadline_ms is not None else self.config.deadline_ms
        budget = budget if budget is not None else self.config.portfolio_budget
        plan = plan_portfolio(
            InstanceFeatures.from_graph(target_graph, family=family), self.config
        )
        started = time.perf_counter()
        outcomes: list[RungOutcome] = []
        best: tuple[QualityKey, CompilationResult, str] | None = None
        slowest_rung = 0.0
        for index, spec in enumerate(plan.rungs):
            ran = len([o for o in outcomes if o.status == "ran"])
            if index > 0 and not self._admit_rung(
                ran, budget, deadline_ms, time.perf_counter() - started, slowest_rung
            ):
                outcomes.append(RungOutcome(spec=spec, status="pending"))
                continue
            result, seconds = self._run_rung(spec, target_graph)
            slowest_rung = max(slowest_rung, seconds)
            key = quality_key(result)
            improved = best is None or key < best[0]
            if improved:
                best = (key, result, spec.name)
            outcomes.append(
                RungOutcome(
                    spec=spec,
                    status="ran",
                    seconds=seconds,
                    quality=key,
                    improved=improved,
                )
            )
        assert best is not None  # rung 0 always runs
        elapsed = time.perf_counter() - started
        return PortfolioResult(
            result=best[1],
            winner=best[2],
            quality=best[0],
            outcomes=outcomes,
            plan=plan,
            deadline_ms=deadline_ms,
            budget=budget,
            deadline_missed=(
                deadline_ms is not None and elapsed * 1000.0 > deadline_ms
            ),
            elapsed_seconds=elapsed,
        )

    def refine(
        self, target_graph: GraphState, result: PortfolioResult
    ) -> PortfolioResult:
        """Run the pending rungs of ``result`` synchronously.

        Returns a new :class:`PortfolioResult` whose winner accounts for
        every rung; pending rungs that improve on the previous best bump
        the process-wide refinement-improvement counter.  Because refined
        rungs compile with the subgraph cache enabled, the improvements
        also warm the cache for future compiles of isomorphic leaves.
        """
        best = (result.quality, result.result, result.winner)
        outcomes = [
            RungOutcome(
                spec=o.spec,
                status=o.status,
                seconds=o.seconds,
                quality=o.quality,
                improved=o.improved,
            )
            for o in result.outcomes
        ]
        started = time.perf_counter()
        for outcome in outcomes:
            if outcome.status != "pending":
                continue
            compiled, seconds = self._run_rung(outcome.spec, target_graph)
            key = quality_key(compiled)
            improved = key < best[0]
            if improved:
                best = (key, compiled, outcome.spec.name)
            outcome.status = "ran"
            outcome.seconds = seconds
            outcome.quality = key
            outcome.improved = improved
            _REFINEMENT_STATS.record_rung(improved)
        return PortfolioResult(
            result=best[1],
            winner=best[2],
            quality=best[0],
            outcomes=outcomes,
            plan=result.plan,
            deadline_ms=result.deadline_ms,
            budget=result.budget,
            deadline_missed=result.deadline_missed,
            elapsed_seconds=result.elapsed_seconds
            + (time.perf_counter() - started),
        )

    # ------------------------------------------------------------------ #

    def _run_rung(
        self, spec: RungSpec, target_graph: GraphState
    ) -> tuple[CompilationResult, float]:
        """Compile one rung configuration, timed."""
        started = time.perf_counter()
        result = EmitterCompiler(spec.config(self.config)).compile(target_graph)
        return result, time.perf_counter() - started

    @staticmethod
    def _admit_rung(
        rungs_ran: int,
        budget: int | None,
        deadline_ms: float | None,
        elapsed_seconds: float,
        slowest_rung_seconds: float,
    ) -> bool:
        """Should the next rung run under the remaining budget?"""
        if budget is not None and rungs_ran >= budget:
            return False
        if deadline_ms is not None:
            predicted = slowest_rung_seconds * RUNG_COST_GROWTH
            if (elapsed_seconds + predicted) * 1000.0 > deadline_ms:
                return False
        return True


def compile_anytime(
    target_graph: GraphState,
    config: CompilerConfig | None = None,
    deadline_ms: float | None = None,
    budget: int | None = None,
    family: str | None = None,
    **overrides,
) -> PortfolioResult:
    """One-call anytime compilation (the portfolio counterpart of
    :func:`repro.core.compiler.compile_graph`).

    Parameters
    ----------
    target_graph : GraphState
        The photonic graph state to generate.
    config : CompilerConfig | None, optional
        Base configuration (defaults apply when ``None``).
    deadline_ms, budget : float | None, int | None, optional
        Anytime budgets (see :meth:`PortfolioCompiler.compile`).
    family : str | None, optional
        Zoo family of the graph, if known (a selector feature).
    **overrides
        Extra :class:`CompilerConfig` fields applied on top of ``config``.

    Returns
    -------
    PortfolioResult
        The best-so-far compilation at the budget.
    """
    if config is None:
        config = CompilerConfig()
    if overrides:
        config = config.with_overrides(**overrides)
    return PortfolioCompiler(config).compile(
        target_graph, deadline_ms=deadline_ms, budget=budget, family=family
    )


# --------------------------------------------------------------------------- #
# Background refinement
# --------------------------------------------------------------------------- #


@dataclass
class RefinementStats:
    """Thread-safe counters for background/synchronous refinement."""

    rungs: int = 0
    improvements: int = 0
    submitted: int = 0
    dropped: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record_rung(self, improved: bool) -> None:
        """Count one refined rung (and whether it beat the served result)."""
        with self._lock:
            self.rungs += 1
            if improved:
                self.improvements += 1

    def record_submit(self, accepted: bool) -> None:
        """Count one refinement submission (or a queue-full drop)."""
        with self._lock:
            if accepted:
                self.submitted += 1
            else:
                self.dropped += 1

    def as_dict(self) -> dict[str, int]:
        """Snapshot for ``/healthz`` and the fleet ``/metrics`` roll-up."""
        with self._lock:
            return {
                "refinement_rungs": self.rungs,
                "refinement_improvements": self.improvements,
                "refinement_submitted": self.submitted,
                "refinement_dropped": self.dropped,
            }

    def reset(self) -> None:
        """Zero every counter (tests)."""
        with self._lock:
            self.rungs = 0
            self.improvements = 0
            self.submitted = 0
            self.dropped = 0


_REFINEMENT_STATS = RefinementStats()


def refinement_stats() -> RefinementStats:
    """The process-wide refinement counters."""
    return _REFINEMENT_STATS


def reset_refinement_stats() -> None:
    """Zero the process-wide refinement counters (tests)."""
    _REFINEMENT_STATS.reset()


class BackgroundRefiner:
    """Run pending portfolio rungs off the request path.

    One daemon worker thread drains a bounded queue of ``(job, pending
    rung names, served quality)`` items: each item rebuilds its graph and
    configuration from the job description, compiles the pending rungs
    with the subgraph cache enabled (warming it for future requests), and
    counts rungs that beat the served quality as refinement improvements.

    The queue is bounded and submissions never block — under overload
    refinement work is *dropped* (counted in :func:`refinement_stats`),
    never queued unboundedly.

    Parameters
    ----------
    max_queue : int, optional
        Maximum queued refinement items before submissions are dropped.
    """

    def __init__(self, max_queue: int = 64):
        self._queue: queue.Queue = queue.Queue(maxsize=int(max_queue))
        self._idle = threading.Event()
        self._idle.set()
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the worker thread (queued items are left unprocessed)."""
        self._stop.set()
        with self._lock:
            thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=timeout)
        with self._lock:
            self._thread = None
        self._stop.clear()

    def _ensure_thread(self) -> None:
        with self._lock:
            if self._thread is None or not self._thread.is_alive():
                self._thread = threading.Thread(
                    target=self._loop, name="repro-portfolio-refiner", daemon=True
                )
                self._thread.start()

    def submit_job(
        self, job, pending: list[str], served_quality: tuple | list | None
    ) -> bool:
        """Queue the pending rungs of one served job for refinement.

        Parameters
        ----------
        job : repro.pipeline.jobs.BatchJob
            The served job (its description rebuilds graph and config).
        pending : list[str]
            Names of the rungs the request budget skipped.
        served_quality : tuple | list | None
            The quality key of the served result (baseline for the
            improvement counter); ``None`` counts every rung as
            non-improving.

        Returns
        -------
        bool
            True when queued, False when dropped (queue full or nothing
            pending).
        """
        if not pending:
            return False
        try:
            self._queue.put_nowait((job, tuple(pending), served_quality))
        except queue.Full:
            _REFINEMENT_STATS.record_submit(accepted=False)
            return False
        _REFINEMENT_STATS.record_submit(accepted=True)
        self._idle.clear()
        self._ensure_thread()
        return True

    def drain(self, timeout: float = 30.0) -> bool:
        """Wait until the queue is empty and the worker idle (tests).

        Returns
        -------
        bool
            True when everything submitted so far has been processed.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self._queue.empty() and self._idle.is_set():
                return True
            time.sleep(0.01)
        return self._queue.empty() and self._idle.is_set()

    # ------------------------------------------------------------------ #

    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                item = self._queue.get(timeout=0.1)
            except queue.Empty:
                self._idle.set()
                continue
            try:
                self._refine_one(*item)
            except Exception:  # noqa: BLE001 - refinement is best-effort
                pass
            finally:
                if self._queue.empty():
                    self._idle.set()

    @staticmethod
    def _refine_one(job, pending: tuple[str, ...], served_quality) -> None:
        """Compile the pending rungs of one job and count improvements."""
        from repro.pipeline.jobs import _job_config

        graph = job.graph.build()
        config = _job_config(job)
        compiler = PortfolioCompiler(config)
        plan = plan_portfolio(
            InstanceFeatures.from_graph(graph, family=job.graph.family), config
        )
        if isinstance(served_quality, dict):
            served_quality = (
                served_quality.get("num_emitter_emitter_cnots", 0.0),
                served_quality.get("average_photon_loss_duration", 0.0),
                served_quality.get("duration", 0.0),
            )
        baseline: QualityKey | None = (
            tuple(float(v) for v in served_quality)
            if served_quality is not None
            else None
        )
        for spec in plan.rungs:
            if spec.name not in pending:
                continue
            result, _seconds = compiler._run_rung(spec, graph)
            key = quality_key(result)
            improved = baseline is not None and key < baseline
            if improved:
                baseline = key
            _REFINEMENT_STATS.record_rung(improved)


_BACKGROUND_REFINER: BackgroundRefiner | None = None
_BACKGROUND_REFINER_LOCK = threading.Lock()


def get_background_refiner() -> BackgroundRefiner:
    """The process-wide background refiner (created on first use)."""
    global _BACKGROUND_REFINER
    with _BACKGROUND_REFINER_LOCK:
        if _BACKGROUND_REFINER is None:
            _BACKGROUND_REFINER = BackgroundRefiner()
        return _BACKGROUND_REFINER
