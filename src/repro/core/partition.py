"""Graph-state partitioning with depth-limited local complementation (paper §IV.A).

The partitioner's objective is the number of **stem edges** — edges whose
endpoints land in different subgraphs — because every stem edge ultimately
costs emitter-emitter CNOTs in the recombined circuit.  Local complementation
(LC) can move entanglement around before cutting, often reducing the cut
dramatically (Fig. 7 of the paper), at the price of a few extra single-qubit
gates.

Two solution paths are provided:

* **exact** — the 0-1 MIP partition model (vertex-to-block assignment
  variables, block size caps, cut-edge counting) solved with the
  branch-and-bound solver of :mod:`repro.solvers.mip`.  Matching the paper's
  Gurobi model exactly (including the LC step variables) explodes even for
  small graphs, so the exact path solves the *partition* model on the current
  graph; LC is handled by the outer search loop in both paths.
* **heuristic** — greedy block growth + Kernighan–Lin refinement, wrapped in
  a depth-limited LC search that alternates "apply the best cut-reducing LC"
  and "re-partition", which is how the framework scales to the paper-sized
  benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.core.config import CompilerConfig
from repro.graphs.graph_state import GraphState
from repro.graphs.local_complementation import (
    LCOperation,
    lc_toggle_deltas,
    local_complement,
)
from repro.utils.backend import DENSE, resolve_backend
from repro.solvers.mip import BinaryLinearProgram, MIPStatus, solve_binary_program
from repro.solvers.partition_heuristics import (
    balanced_greedy_partition,
    cut_size,
    kernighan_lin_refinement,
)

__all__ = ["PartitionResult", "GraphPartitioner", "build_partition_program"]

Vertex = Hashable


@dataclass
class PartitionResult:
    """Outcome of the partition + LC stage.

    Attributes:
        original_graph: the graph the partitioner was asked to split.
        transformed_graph: the graph after the chosen LC sequence (the one the
            rest of the pipeline compiles).
        blocks: vertex blocks (subgraphs / leaves).
        lc_operations: LC operations applied to obtain ``transformed_graph``
            (needed to emit the single-qubit correction gates).
        stem_edges: edges of ``transformed_graph`` between different blocks.
        method: ``"exact"`` or ``"heuristic"``.
    """

    original_graph: GraphState
    transformed_graph: GraphState
    blocks: list[list[Vertex]]
    lc_operations: list[LCOperation]
    stem_edges: list[tuple[Vertex, Vertex]]
    method: str

    @property
    def num_stem_edges(self) -> int:
        return len(self.stem_edges)

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    def block_of(self) -> dict[Vertex, int]:
        """Map every vertex to the index of its block."""
        mapping: dict[Vertex, int] = {}
        for index, block in enumerate(self.blocks):
            for v in block:
                mapping[v] = index
        return mapping


def build_partition_program(
    graph: GraphState, max_block_size: int, num_blocks: int
) -> tuple[
        BinaryLinearProgram,
        dict[tuple[Vertex, int], str],
        dict[tuple[Vertex, Vertex, int], str],
    ]:
    """Build the 0-1 partition model of paper Eq. (4)-(5) for a fixed graph.

    Variables:

    * ``y[v,g]`` — vertex ``v`` assigned to block ``g``;
    * ``s[u,v,g]`` — both endpoints of edge ``(u, v)`` are in block ``g``
      (linearisation of the product ``y[u,g] * y[v,g]``).

    The objective minimises the number of edges *not* internal to any block
    (i.e. the stem edges).  Returns the program plus the variable-name maps.
    """
    if max_block_size < 1:
        raise ValueError("max_block_size must be >= 1")
    if num_blocks < 1:
        raise ValueError("num_blocks must be >= 1")
    program = BinaryLinearProgram()
    y_names: dict[tuple[Vertex, int], str] = {}
    s_names: dict[tuple[Vertex, Vertex, int], str] = {}

    vertices = graph.vertices()
    edges = graph.edges()

    for v in vertices:
        for g in range(num_blocks):
            y_names[(v, g)] = program.add_variable(f"y[{v!r},{g}]")
        # Every vertex sits in exactly one block.
        program.add_constraint(
            {y_names[(v, g)]: 1.0 for g in range(num_blocks)}, "==", 1.0, name=f"assign[{v!r}]"
        )
    for g in range(num_blocks):
        program.add_constraint(
            {y_names[(v, g)]: 1.0 for v in vertices},
            "<=",
            float(max_block_size),
            name=f"capacity[{g}]",
        )

    # Objective: #edges - sum_g internal(u, v, g); the constant keeps the
    # optimum equal to the stem-edge count.
    program.add_objective_constant(float(len(edges)))
    for u, v in edges:
        for g in range(num_blocks):
            name = program.add_variable(f"s[{u!r},{v!r},{g}]")
            s_names[(u, v, g)] = name
            program.add_objective_term(name, -1.0)
            # s <= y_u, s <= y_v, s >= y_u + y_v - 1
            program.add_constraint({name: 1.0, y_names[(u, g)]: -1.0}, "<=", 0.0)
            program.add_constraint({name: 1.0, y_names[(v, g)]: -1.0}, "<=", 0.0)
            program.add_constraint(
                {name: 1.0, y_names[(u, g)]: -1.0, y_names[(v, g)]: -1.0}, ">=", -1.0
            )
    # Symmetry breaking: the first vertex goes to block 0.
    if vertices:
        program.add_constraint({y_names[(vertices[0], 0)]: 1.0}, "==", 1.0, name="symmetry")
    return program, y_names, s_names


class GraphPartitioner:
    """Partition a graph state into bounded blocks with an LC budget."""

    def __init__(self, config: CompilerConfig | None = None):
        self.config = config if config is not None else CompilerConfig()

    # ------------------------------------------------------------------ #
    # Public entry point
    # ------------------------------------------------------------------ #

    def partition(self, graph: GraphState) -> PartitionResult:
        """Run the combined LC + partition search on ``graph``."""
        if graph.num_vertices == 0:
            raise ValueError("cannot partition an empty graph")
        config = self.config
        if graph.num_vertices <= config.max_subgraph_size:
            # A single block; LC is still worth applying to shrink the edge
            # count (fewer edges means fewer emitter-emitter CNOTs inside the
            # only leaf).
            transformed, lc_ops = self._lc_edge_minimisation(graph, config.lc_budget)
            blocks = [list(transformed.vertices())]
            return PartitionResult(
                original_graph=graph.copy(),
                transformed_graph=transformed,
                blocks=blocks,
                lc_operations=lc_ops,
                stem_edges=[],
                method="trivial",
            )

        use_exact = config.partition_method == "exact" or (
            config.partition_method == "auto"
            and graph.num_vertices <= config.exact_partition_max_vertices
        )
        if use_exact:
            return self._partition_with_lc(graph, exact=True)
        return self._partition_with_lc(graph, exact=False)

    # ------------------------------------------------------------------ #
    # LC search wrapper
    # ------------------------------------------------------------------ #

    def _partition_with_lc(self, graph: GraphState, exact: bool) -> PartitionResult:
        """Alternate cut-reducing LC moves and re-partitioning."""
        config = self.config
        current = graph.copy()
        lc_ops: list[LCOperation] = []

        best_blocks = self._partition_once(current, exact)
        best_cut = cut_size(current, best_blocks)
        best_edges = current.num_edges
        best_graph = current.copy()
        best_ops = list(lc_ops)

        current_blocks = best_blocks
        remaining_budget = config.lc_budget
        packed_scoring = resolve_backend(None) != DENSE
        while remaining_budget > 0:
            # Evaluate one LC move per vertex against the *current* partition
            # (cheap proxy).  A move is attractive when it reduces the cut, or
            # — failing that — the total edge count (fewer edges generally
            # means fewer emitter-emitter CNOTs even inside the leaves).  On
            # the packed backend every candidate is scored by the exact
            # (cut, edge) deltas from the packed adjacency rows — no graph
            # copy per vertex; the dense path keeps the copy-and-measure loop
            # as the oracle.  Both pick the same vertex.
            candidate_vertex = None
            candidate_key: tuple[int, int] | None = None
            current_key = (cut_size(current, current_blocks), current.num_edges)
            if packed_scoring:
                block_of = {
                    v: b for b, block in enumerate(current_blocks) for v in block
                }
                deltas = lc_toggle_deltas(current, block_of)
                for vertex in current.vertices():
                    delta = deltas.get(vertex)
                    if delta is None:  # degree < 2: LC is a no-op
                        continue
                    trial_key = (
                        current_key[0] + delta[1],
                        current_key[1] + delta[0],
                    )
                    if trial_key < current_key and (
                        candidate_key is None or trial_key < candidate_key
                    ):
                        candidate_key = trial_key
                        candidate_vertex = vertex
            else:
                for vertex in current.vertices():
                    if current.degree(vertex) < 2:
                        continue
                    trial = current.copy()
                    trial.local_complement(vertex)
                    trial_key = (cut_size(trial, current_blocks), trial.num_edges)
                    if trial_key < current_key and (
                        candidate_key is None or trial_key < candidate_key
                    ):
                        candidate_key = trial_key
                        candidate_vertex = vertex
            if candidate_vertex is None:
                break
            current, op = local_complement(current, candidate_vertex)
            lc_ops.append(op)
            remaining_budget -= 1
            current_blocks = self._partition_once(current, exact)
            cut = cut_size(current, current_blocks)
            if (cut, current.num_edges) < (best_cut, best_edges):
                best_cut = cut
                best_edges = current.num_edges
                best_blocks = current_blocks
                best_graph = current.copy()
                best_ops = list(lc_ops)

        stem = best_graph.cut_edges(best_blocks)
        return PartitionResult(
            original_graph=graph.copy(),
            transformed_graph=best_graph,
            blocks=[list(b) for b in best_blocks],
            lc_operations=best_ops,
            stem_edges=stem,
            method="exact" if exact else "heuristic",
        )

    def _lc_edge_minimisation(
        self, graph: GraphState, budget: int
    ) -> tuple[GraphState, list[LCOperation]]:
        """Greedy LC moves minimising the total edge count (single-block case)."""
        from repro.graphs.local_complementation import minimize_edges_by_lc

        if budget <= 0:
            return graph.copy(), []
        return minimize_edges_by_lc(graph, budget)

    # ------------------------------------------------------------------ #
    # Single partition round
    # ------------------------------------------------------------------ #

    def _partition_once(self, graph: GraphState, exact: bool) -> list[list[Vertex]]:
        config = self.config
        if exact:
            blocks = self._partition_exact(graph)
            if blocks is not None:
                return blocks
        blocks = balanced_greedy_partition(
            graph, config.max_subgraph_size, seed=config.seed
        )
        blocks = kernighan_lin_refinement(graph, blocks, config.max_subgraph_size)
        return blocks

    def _partition_exact(self, graph: GraphState) -> list[list[Vertex]] | None:
        """Solve the partition MIP; fall back to ``None`` on budget exhaustion."""
        config = self.config
        num_blocks = -(-graph.num_vertices // config.max_subgraph_size)  # ceil division
        program, y_names, _ = build_partition_program(
            graph, config.max_subgraph_size, num_blocks
        )
        solution = solve_binary_program(program, max_nodes=150_000)
        if solution.status is MIPStatus.INFEASIBLE or not solution.assignment:
            return None
        blocks: list[list[Vertex]] = [[] for _ in range(num_blocks)]
        for (vertex, block_index), name in y_names.items():
            if solution.assignment.get(name, 0) == 1:
                blocks[block_index].append(vertex)
        blocks = [b for b in blocks if b]
        if sum(len(b) for b in blocks) != graph.num_vertices:
            return None
        return blocks
