"""The isomorphism-memoized subgraph compile cache.

The partitioner emits the same small leaf graph over and over up to vertex
relabeling; :class:`SubgraphCompileCache` memoizes the per-leaf ordering
search so every isomorphic copy after the first is answered by remapping a
cached result instead of re-searching.  Three tiers:

1. **per-process LRU** (:func:`get_process_cache`) — shared by every
   :class:`repro.core.subgraph_compiler.SubgraphCompiler` in the process, so
   batch-pipeline workers reuse results *across jobs* for free;
2. **optional disk tier** — a :class:`repro.pipeline.cache.ResultCache`
   directory (``REPRO_SUBGRAPH_CACHE_DIR`` or ``repro serve
   --subgraph-cache-dir``) that persists entries across processes and
   restarts, which is what keeps ``repro serve`` warm after a redeploy;
3. **the content-hash job cache** (unchanged, one level up) — whole job
   records; the subgraph tier accelerates the misses of that tier.

Entries are stored *in canonical labels* (see
:mod:`repro.graphs.canonical_form`): the winning processing order, the
reduction op sequence, and the scored metrics.  The compiler remaps them
through the canonical permutation on every hit; remapped circuits are
bit-identical to a fresh compile modulo the relabeling, because the search
itself runs in canonical space (cache on or off).

Cache keys are ``(canonical key, emitter budget, seeded order,
config fingerprint)`` where the fingerprint covers exactly the
:class:`repro.core.config.CompilerConfig` fields that influence the search
and the reported metrics — and deliberately *not* the GF(2) backend (packed
and dense produce bit-identical sequences) or the cache knobs themselves.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.circuit.circuit import Circuit
from repro.circuit.metrics import CircuitMetrics
from repro.core.reduction import ReductionOp, ReductionOpType, ReductionSequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.config import CompilerConfig

__all__ = [
    "CacheStats",
    "CachedCompilation",
    "SubgraphCompileCache",
    "config_fingerprint",
    "get_process_cache",
    "peek_process_cache",
    "reset_process_cache",
]

#: Bump when the entry layout or the search semantics change; stale disk
#: entries with another version are ignored (treated as misses).
CACHE_SCHEMA_VERSION = 1

#: Environment variable naming the persistent disk-tier directory.  Read at
#: process-cache creation time so ``ProcessPoolExecutor`` workers (which
#: inherit the environment) pick the tier up without extra plumbing.
CACHE_DIR_ENV = "REPRO_SUBGRAPH_CACHE_DIR"

DEFAULT_CAPACITY = 4096


@dataclass
class CacheStats:
    """Counters of one :class:`SubgraphCompileCache`.

    ``hits``/``misses`` count logical lookups; ``disk_hits`` is the subset of
    hits answered by the persistent tier (also counted in ``hits``).
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    disk_hits: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when nothing was looked up)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for ``/healthz``, benches and result objects."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "stores": self.stores,
            "hit_rate": self.hit_rate,
        }

    def delta(self, since: "CacheStats") -> dict[str, float]:
        """Counter difference ``self - since`` (for per-compile reporting)."""
        hits = self.hits - since.hits
        misses = self.misses - since.misses
        lookups = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "evictions": self.evictions - since.evictions,
            "disk_hits": self.disk_hits - since.disk_hits,
            "stores": self.stores - since.stores,
            "hit_rate": hits / lookups if lookups else 0.0,
        }

    def snapshot(self) -> "CacheStats":
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            disk_hits=self.disk_hits,
            stores=self.stores,
        )


@dataclass
class CachedCompilation:
    """One memoized leaf compilation, in canonical labels.

    ``search_max_emitters`` is the largest emitter pool any *candidate* of
    the search allocated; when it is strictly below the budget the search
    never felt budget pressure, so the identical result is provably optimal
    for every larger budget too (the flexible-constraint skip).
    """

    processing_order: tuple[int, ...]
    operations: tuple[ReductionOp, ...]
    num_photons: int
    num_emitters: int
    emitters_over_budget: int
    metrics: CircuitMetrics
    orders_evaluated: int
    search_max_emitters: int
    _circuit: Circuit | None = field(default=None, repr=False, compare=False)

    def circuit(self) -> Circuit:
        """The forward circuit in canonical labels (built once, then shared)."""
        if self._circuit is None:
            self._circuit = self.canonical_sequence().to_circuit()
        return self._circuit

    def canonical_sequence(self) -> ReductionSequence:
        """The op sequence with the identity canonical-label photon map."""
        return ReductionSequence(
            operations=list(self.operations),
            num_photons=self.num_photons,
            num_emitters=self.num_emitters,
            photon_of_vertex={i: i for i in range(self.num_photons)},
            emitters_over_budget=self.emitters_over_budget,
        )

    # ------------------------------------------------------------------ #
    # Disk-tier (de)serialisation
    # ------------------------------------------------------------------ #

    def as_dict(self) -> dict:
        """JSON-serialisable form for the persistent tier."""
        return {
            "schema_version": CACHE_SCHEMA_VERSION,
            "processing_order": list(self.processing_order),
            "operations": [
                [op.op_type.value, op.emitter, op.emitter_b, op.photon, op.tag]
                for op in self.operations
            ],
            "num_photons": self.num_photons,
            "num_emitters": self.num_emitters,
            "emitters_over_budget": self.emitters_over_budget,
            "metrics": self.metrics.as_dict(),
            "orders_evaluated": self.orders_evaluated,
            "search_max_emitters": self.search_max_emitters,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CachedCompilation":
        """Rebuild an entry; raises on any shape/version mismatch."""
        if data.get("schema_version") != CACHE_SCHEMA_VERSION:
            raise ValueError("stale subgraph-cache schema version")
        operations = tuple(
            ReductionOp(
                op_type=ReductionOpType(op_type),
                emitter=emitter,
                emitter_b=emitter_b,
                photon=photon,
                tag=tag,
            )
            for op_type, emitter, emitter_b, photon, tag in data["operations"]
        )
        return cls(
            processing_order=tuple(int(v) for v in data["processing_order"]),
            operations=operations,
            num_photons=int(data["num_photons"]),
            num_emitters=int(data["num_emitters"]),
            emitters_over_budget=int(data["emitters_over_budget"]),
            metrics=CircuitMetrics(**data["metrics"]),
            orders_evaluated=int(data["orders_evaluated"]),
            search_max_emitters=int(data["search_max_emitters"]),
        )


def config_fingerprint(config: "CompilerConfig") -> tuple:
    """The search-relevant fingerprint of a :class:`CompilerConfig`.

    Covers every field that changes the canonical-space ordering search or
    the reported metrics.  Deliberately excluded: the GF(2) backend (packed
    and dense are bit-identical by construction), the partitioning knobs
    (leaves are compiled as given) and the ``subgraph_cache*`` knobs
    themselves (they must never change results).
    """
    durations = config.hardware.durations
    return (
        config.max_order_candidates,
        config.exhaustive_order_threshold,
        config.ordering_strategy,
        config.ordering_iterations,
        config.use_twin_rule,
        config.seed,
        durations.emitter_emitter_gate,
        durations.emission,
        durations.emitter_single_qubit,
        durations.photon_single_qubit,
        durations.measurement,
        durations.reset,
    )


def _key_digest(key: tuple) -> str:
    """Filename-safe digest of a full cache key (disk-tier file name)."""
    return "sg-" + hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


class SubgraphCompileCache:
    """A bounded LRU of :class:`CachedCompilation` entries, optionally disk-backed.

    Parameters
    ----------
    capacity : int, optional
        Maximum in-memory entries; the least recently used entry is evicted
        beyond it.
    disk_dir : str | None, optional
        Directory for the persistent tier (a
        :class:`repro.pipeline.cache.ResultCache`); ``None`` keeps the cache
        memory-only.

    Notes
    -----
    Thread-safe: the compile service looks entries up from several request
    threads at once.  Keys never map to two different values (the search is
    a pure function of the key), so races at worst duplicate work.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, disk_dir: str | None = None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.stats = CacheStats()
        self._entries: OrderedDict[tuple, CachedCompilation] = OrderedDict()
        self._lock = threading.Lock()
        self._disk = None
        if disk_dir is not None:
            from repro.pipeline.cache import ResultCache

            self._disk = ResultCache(disk_dir)

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def disk_enabled(self) -> bool:
        return self._disk is not None

    def resize(self, capacity: int) -> None:
        """Grow the capacity (shared caches only ever grow, never shrink)."""
        with self._lock:
            self.capacity = max(self.capacity, int(capacity))

    def disk_stats(self) -> dict | None:
        """Disk-tier counters and breaker state (``None`` when memory-only).

        Surfaces the corruption-quarantine and circuit-breaker counters of
        the underlying :class:`repro.pipeline.cache.ResultCache`, so
        ``/healthz`` can report a degraded (memory-only) subgraph tier.
        """
        disk = self._disk
        return disk.stats() if disk is not None else None

    def attach_disk(self, disk_dir: str) -> None:
        """Attach (or replace) the persistent tier on a live cache.

        Existing in-memory entries are not backfilled; future stores write
        through and future misses consult the new directory.  This is what
        lets a service configure its disk tier even when earlier compiles in
        the process already created the shared cache memory-only.
        """
        from repro.pipeline.cache import ResultCache

        with self._lock:
            self._disk = ResultCache(disk_dir)

    def get(self, key: tuple) -> CachedCompilation | None:
        """Look ``key`` up in the memory tier, then the disk tier."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return entry
        entry = self._load_from_disk(key)
        with self._lock:
            if entry is None:
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            self.stats.disk_hits += 1
            self._store(key, entry)
        return entry

    def put(self, key: tuple, entry: CachedCompilation) -> None:
        """Insert ``entry`` (write-through to the disk tier when enabled)."""
        with self._lock:
            self.stats.stores += 1
            self._store(key, entry)
        if self._disk is not None:
            self._disk.put(_key_digest(key), entry.as_dict())

    def clear(self) -> None:
        """Drop every in-memory entry and reset the counters (tests/benches)."""
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()

    # ------------------------------------------------------------------ #

    def _store(self, key: tuple, entry: CachedCompilation) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def _load_from_disk(self, key: tuple) -> CachedCompilation | None:
        if self._disk is None:
            return None
        data = self._disk.get(_key_digest(key))
        if data is None:
            return None
        try:
            return CachedCompilation.from_dict(data)
        except (KeyError, TypeError, ValueError):
            return None


# --------------------------------------------------------------------------- #
# The process-wide cache (tier 1)
# --------------------------------------------------------------------------- #

_process_cache: SubgraphCompileCache | None = None
_process_lock = threading.Lock()


def get_process_cache(
    capacity: int | None = None, disk_dir: str | None = None
) -> SubgraphCompileCache:
    """The shared per-process cache, created on first use.

    Parameters
    ----------
    capacity : int | None, optional
        Requested capacity; the shared cache grows to the largest request it
        has seen (it never shrinks under a concurrent user's feet).
    disk_dir : str | None, optional
        Persistent-tier directory; defaults to the ``REPRO_SUBGRAPH_CACHE_DIR``
        environment variable (read only when the cache is first created).
        Passing it explicitly for an already-created cache attaches the tier
        via :meth:`SubgraphCompileCache.attach_disk`.
    """
    global _process_cache
    with _process_lock:
        if _process_cache is None:
            import os

            directory = disk_dir if disk_dir is not None else os.environ.get(CACHE_DIR_ENV)
            _process_cache = SubgraphCompileCache(
                capacity=capacity if capacity is not None else DEFAULT_CAPACITY,
                disk_dir=directory or None,
            )
        else:
            if capacity is not None:
                _process_cache.resize(capacity)
            if disk_dir is not None:
                _process_cache.attach_disk(disk_dir)
        return _process_cache


def peek_process_cache() -> SubgraphCompileCache | None:
    """The shared cache if one exists, without creating it (``/healthz``)."""
    return _process_cache


def reset_process_cache() -> None:
    """Forget the shared cache (tests and cold-vs-warm benchmarks)."""
    global _process_cache
    with _process_lock:
        _process_cache = None
