"""Cheap candidate-plan scoring straight from a reduction sequence.

The compiler's recombination stage and the subgraph order search both rank
many candidate reductions by the paper's hardware-aware objective

``(#emitter-emitter CNOTs, average photon-loss duration, duration)``

and historically paid for every candidate by materialising the full forward
:class:`~repro.circuit.circuit.Circuit` and running
:func:`~repro.circuit.metrics.compute_metrics` (one gate object, one schedule
entry and one dataclass per gate, per candidate).  Only the *winning*
candidate ever needs the circuit.

:func:`score_sequence` computes the identical objective tuple directly from
the operation sequence: it expands each reversed operation into the exact
gate list :func:`~repro.core.reduction.forward_circuit_from_sequence` would
emit — as bare ``(operands, duration)`` tuples — and replays the same
ASAP/ALAP dependency-list recurrences as
:func:`repro.circuit.timing.schedule_circuit`.  The floating-point
arithmetic is performed in the same order, so the scores are **bit-identical**
to the metrics of the materialised circuit and candidate selection is
unchanged; only the per-candidate cost drops (no object churn, one dict
walk).
"""

from __future__ import annotations

from repro.circuit.timing import GateDurations
from repro.core.reduction import ReductionOpType, ReductionSequence

__all__ = ["score_sequence"]


def _expanded_gates(
    sequence: ReductionSequence, durations: GateDurations
) -> list[tuple[tuple[tuple[str, int], ...], float, int | None]]:
    """The forward gate list as ``(operand keys, duration, emitted photon)``.

    Mirrors :func:`repro.core.reduction.forward_circuit_from_sequence` gate
    for gate; operand keys match :func:`repro.circuit.timing._qubit_key`
    (conditional-Pauli operands included, exactly as the scheduler sees
    them).  ``emitted photon`` is set on ``EMIT`` entries only.
    """
    emit = durations.emission
    e1 = durations.emitter_single_qubit
    p1 = durations.photon_single_qubit
    meas = durations.measurement
    cz = durations.emitter_emitter_gate
    gates: list[tuple[tuple[tuple[str, int], ...], float, int | None]] = []
    for op in reversed(sequence.operations):
        e = ("emitter", op.emitter) if op.emitter is not None else None
        p = ("photon", op.photon) if op.photon is not None else None
        kind = op.op_type
        if kind is ReductionOpType.SWAP:
            gates.append(((e, p), emit, op.photon))
            gates.append(((e,), e1, None))
            # MEASURE_Z with a conditional Z on the photon: the photon is an
            # operand of the measurement for scheduling purposes.
            gates.append(((e, p), meas, None))
        elif kind is ReductionOpType.ABSORB_LEAF:
            gates.append(((e, p), emit, op.photon))
            gates.append(((p,), p1, None))
        elif kind is ReductionOpType.ABSORB_DANGLING:
            gates.append(((e, p), emit, op.photon))
            gates.append(((e,), e1, None))
        elif kind is ReductionOpType.ABSORB_TWIN:
            gates.append(((e,), e1, None))
            gates.append(((e, p), emit, op.photon))
            gates.append(((p,), p1, None))
            gates.append(((e,), e1, None))
        elif kind is ReductionOpType.DISCONNECT:
            gates.append(((e, ("emitter", op.emitter_b)), cz, None))
        elif kind is ReductionOpType.EMIT_ISOLATED:
            gates.append(((e, p), emit, op.photon))
            gates.append(((p,), p1, None))
        elif kind is ReductionOpType.FREE_EMITTER:
            gates.append(((e,), e1, None))
        else:  # pragma: no cover - the enum is closed
            raise ValueError(f"unknown reduction operation {op!r}")
    return gates


def score_sequence(
    sequence: ReductionSequence,
    durations: GateDurations | None = None,
    policy: str = "alap",
    cnot_cutoff: float | None = None,
) -> tuple[float, float, float] | None:
    """The plan-selection key of ``sequence`` without building its circuit.

    Returns ``(num_emitter_emitter_cnots, average_photon_loss_duration,
    duration)`` — bit-identical to the corresponding fields of
    ``compute_metrics(sequence.to_circuit(), durations=durations,
    policy=policy)``, at a fraction of the cost.

    Parameters
    ----------
    sequence : ReductionSequence
        A complete reduction (as returned by ``finish``/``greedy_reduce``).
    durations : GateDurations | None, optional
        Hardware gate durations; ``None`` uses the quantum-dot defaults.
    policy : str, optional
        ``"alap"`` (default, the framework's scheduling policy) or
        ``"asap"``.
    cnot_cutoff : float | None, optional
        When given and the sequence has *strictly more* emitter-emitter
        CNOTs, return ``None`` without running the schedule walk.  The CNOT
        count is the leading component of the lexicographic key, so a
        candidate above the cutoff can never win — callers pass their
        current best's count to skip the schedule for most losers.
    """
    if durations is None:
        durations = GateDurations()
    policy = policy.lower()
    if policy not in ("asap", "alap"):
        raise ValueError(f"policy must be 'asap' or 'alap', got {policy!r}")

    cnots = float(sequence.num_emitter_emitter_gates)
    if cnot_cutoff is not None and cnots > cnot_cutoff:
        return None

    gates = _expanded_gates(sequence, durations)

    # ASAP pass (same recurrence as schedule_circuit, same float order).
    ready: dict[tuple[str, int], float] = {}
    asap_end: list[float] = []
    for operands, duration, _ in gates:
        start = max((ready.get(q, 0.0) for q in operands), default=0.0)
        end = start + duration
        asap_end.append(end)
        for q in operands:
            ready[q] = end
    makespan = max(asap_end, default=0.0)

    if policy == "asap":
        end_times = asap_end
        final_makespan = makespan
    else:
        # ALAP pass: schedule the reversed circuit ASAP, then mirror.
        ready = {}
        alap_end = [0.0] * len(gates)
        for i in range(len(gates) - 1, -1, -1):
            operands, duration, _ = gates[i]
            end = min((ready.get(q, makespan) for q in operands), default=makespan)
            alap_end[i] = end
            start = end - duration
            for q in operands:
                ready[q] = start
        alap_start = [e - d for e, (_, d, _) in zip(alap_end, gates)]
        shift = -min(alap_start, default=0.0)
        if shift > 0:
            alap_end = [e + shift for e in alap_end]
        end_times = alap_end
        final_makespan = max(end_times, default=0.0)

    # Average photon-loss duration, accumulated in gate order exactly like
    # Schedule.emission_times() / photon_exposure_times().
    emission_end: dict[int, float] = {}
    for (_, _, photon), end in zip(gates, end_times):
        if photon is not None:
            emission_end[photon] = end
    if emission_end:
        average_loss = sum(
            final_makespan - t for t in emission_end.values()
        ) / len(emission_end)
    else:
        average_loss = 0.0

    return (cnots, average_loss, final_makespan)
