"""The paper's contribution: the divide-and-conquer emitter compiler.

Pipeline (paper §IV):

1. :mod:`repro.core.partition` — graph-state partitioning with depth-limited
   local complementation, minimising inter-subgraph ("stem") edges.
2. :mod:`repro.core.subgraph_compiler` — per-subgraph compilation via a
   bounded search over time-reversed reduction sequences, minimising
   emitter-emitter CNOTs and photon-loss duration under a flexible emitter
   constraint.
3. :mod:`repro.core.scheduler` — subgraph recombination: priority ordering
   (P_c = n_p / T_c), Tetris-style packing of emitter-usage blocks under
   ``N_e^limit`` and emitter reuse.
4. :mod:`repro.core.compiler` — the :class:`EmitterCompiler` facade that
   stitches everything into a single verified generation circuit.

The underlying exact rewrite machinery lives in :mod:`repro.core.reduction`
and is shared with the baseline compiler.
"""

from repro.core.compile_cache import (
    CachedCompilation,
    CacheStats,
    SubgraphCompileCache,
    get_process_cache,
    reset_process_cache,
)
from repro.core.reduction import (
    InsufficientEmittersError,
    ReductionOp,
    ReductionSequence,
    ReductionState,
    forward_circuit_from_sequence,
)
from repro.core.packed_reduction import PackedReductionState, make_reduction_state
from repro.core.plan_scoring import score_sequence
from repro.core.strategies import GreedyReductionStrategy, greedy_reduce
from repro.core.subgraph_compiler import SubgraphCompilationResult, SubgraphCompiler
from repro.core.partition import GraphPartitioner, PartitionResult
from repro.core.scheduler import ScheduledSubgraph, SubgraphScheduler, SchedulePlan
from repro.core.config import CompilerConfig
from repro.core.compiler import CompilationResult, EmitterCompiler
from repro.core.ordering import (
    ORDERING_STRATEGIES,
    OrderingResult,
    optimize_emission_ordering,
)

__all__ = [
    "CachedCompilation",
    "CacheStats",
    "SubgraphCompileCache",
    "get_process_cache",
    "reset_process_cache",
    "InsufficientEmittersError",
    "PackedReductionState",
    "ReductionOp",
    "ReductionSequence",
    "ReductionState",
    "forward_circuit_from_sequence",
    "make_reduction_state",
    "score_sequence",
    "GreedyReductionStrategy",
    "greedy_reduce",
    "SubgraphCompilationResult",
    "SubgraphCompiler",
    "GraphPartitioner",
    "PartitionResult",
    "ScheduledSubgraph",
    "SubgraphScheduler",
    "SchedulePlan",
    "CompilerConfig",
    "CompilationResult",
    "EmitterCompiler",
    "ORDERING_STRATEGIES",
    "OrderingResult",
    "optimize_emission_ordering",
]
