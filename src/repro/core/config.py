"""Compiler configuration.

:class:`CompilerConfig` gathers every knob of the framework in one immutable
object so that experiments are reproducible from a single record.  Defaults
follow the paper's settings: subgraphs of at most ``g_max = 7`` vertices, an
LC budget of ``l = 15`` operations, the quantum-dot hardware model and an
emitter pool of ``1.5 x N_e^min``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.ordering import ORDERING_STRATEGIES
from repro.hardware.models import HardwareModel, quantum_dot
from repro.utils.backend import BACKENDS

__all__ = ["CompilerConfig"]


@dataclass(frozen=True)
class CompilerConfig:
    """Configuration of :class:`repro.core.compiler.EmitterCompiler`.

    Attributes:
        max_subgraph_size: the paper's ``g_max`` (maximum vertices per
            subgraph/leaf).
        lc_budget: the paper's ``l`` (maximum number of local-complementation
            operations used by the partitioning stage); 0 disables LC.
        emitter_limit_factor: ``N_e^limit = ceil(factor * N_e^min)``; ignored
            when ``emitter_limit`` is given explicitly.
        emitter_limit: explicit emitter budget (overrides the factor).
        partition_method: ``"auto"``, ``"heuristic"`` or ``"exact"`` (exact
            uses the branch-and-bound MIP model, only sensible for small
            graphs).
        exact_partition_max_vertices: size cap for the exact MIP path when
            ``partition_method="auto"``.
        flexible_emitter_slack: how many extra emitters beyond each
            subgraph's minimum are explored by the flexible resource
            constraint (the paper compiles with ``n_e^min``, ``+1``, ``+2``,
            i.e. slack 2).
        max_order_candidates: maximum number of processing orders evaluated
            per subgraph by the ordering search.
        exhaustive_order_threshold: subgraphs with at most this many vertices
            are searched exhaustively over all processing orders.
        ordering_strategy: emission-ordering search over the incremental
            cut-rank engine (:mod:`repro.core.ordering`): ``"natural"`` keeps
            the historical vertex order, ``"greedy"`` runs the peak-height
            descent, ``"anneal"`` additionally refines the greedy ordering by
            simulated annealing with incremental suffix re-evaluation.  The
            optimised ordering lowers the emitter bound and joins the
            recombination candidates of the compiler.
        ordering_iterations: annealing proposal steps for
            ``ordering_strategy="anneal"``.
        scheduling_policy: gate-level scheduling policy for the final circuit
            (``"alap"`` delays emissions and is the framework default;
            ``"asap"`` reproduces baseline behaviour).
        use_twin_rule: enable the twin-absorption rewrite in the reduction.
        subgraph_cache: memoize per-leaf ordering searches in the
            process-wide isomorphism-keyed compile cache
            (:mod:`repro.core.compile_cache`).  Leaf searches always run in
            canonical space, so toggling the cache never changes results —
            only whether repeated (isomorphic) leaves pay for the search
            again.
        subgraph_cache_size: capacity of the process-wide compile cache (the
            shared cache grows to the largest request it has seen).
        deadline_ms: anytime-compilation wall-clock deadline in milliseconds
            for :mod:`repro.core.portfolio`: the portfolio compiler returns
            its verified best-so-far once the deadline is reached (the
            cheapest rung always runs, so a result is always produced).
            ``None`` disables the deadline.  Ignored by the plain
            :class:`~repro.core.compiler.EmitterCompiler`.
        portfolio_budget: step-counted anytime budget — the maximum number of
            portfolio rungs (candidate configurations) evaluated, regardless
            of wall-clock time.  Deterministic, so it is the budget of choice
            for tests and reproducible experiments; ``None`` leaves the rung
            count to ``deadline_ms`` (or runs every rung when neither is
            set).  Ignored by the plain compiler.
        verify: re-simulate compiled circuits on the stabilizer tableau.
        gf2_backend: GF(2)/tableau kernel backend pinned for the whole
            compilation (``"dense"``, ``"packed"`` or ``"arena"``); ``None``
            keeps the process default of :mod:`repro.utils.backend` (which
            auto-selects ``arena`` above the measured per-instance crossover,
            see ``REPRO_GF2_ARENA_THRESHOLD``).
        stream_chunk: region size (lattice rows / photons per region) used by
            the streaming partition-compile pipeline
            (:mod:`repro.core.streaming`) when a lazy generator spec does not
            fix its own chunking.  Larger chunks lower per-region overhead,
            smaller chunks lower the peak working-set memory.
        hardware: hardware model (gate durations, loss).
        seed: seed for the stochastic components (ordering search sampling,
            annealing).
    """

    max_subgraph_size: int = 7
    lc_budget: int = 15
    emitter_limit_factor: float = 1.5
    emitter_limit: int | None = None
    partition_method: str = "auto"
    exact_partition_max_vertices: int = 10
    flexible_emitter_slack: int = 2
    max_order_candidates: int = 120
    exhaustive_order_threshold: int = 6
    ordering_strategy: str = "natural"
    ordering_iterations: int = 150
    scheduling_policy: str = "alap"
    use_twin_rule: bool = True
    subgraph_cache: bool = True
    subgraph_cache_size: int = 4096
    deadline_ms: float | None = None
    portfolio_budget: int | None = None
    verify: bool = False
    gf2_backend: str | None = None
    stream_chunk: int = 4
    hardware: HardwareModel = field(default_factory=quantum_dot)
    seed: int = 7

    def __post_init__(self) -> None:
        if self.max_subgraph_size < 1:
            raise ValueError("max_subgraph_size must be >= 1")
        if self.lc_budget < 0:
            raise ValueError("lc_budget must be >= 0")
        if self.emitter_limit_factor < 1.0:
            raise ValueError("emitter_limit_factor must be >= 1.0")
        if self.emitter_limit is not None and self.emitter_limit < 1:
            raise ValueError("emitter_limit must be >= 1 when given")
        if self.partition_method not in ("auto", "heuristic", "exact"):
            raise ValueError(
                "partition_method must be 'auto', 'heuristic' or 'exact', "
                f"got {self.partition_method!r}"
            )
        if self.flexible_emitter_slack < 0:
            raise ValueError("flexible_emitter_slack must be >= 0")
        if self.max_order_candidates < 1:
            raise ValueError("max_order_candidates must be >= 1")
        if self.exhaustive_order_threshold < 1:
            raise ValueError("exhaustive_order_threshold must be >= 1")
        if self.ordering_strategy not in ORDERING_STRATEGIES:
            raise ValueError(
                f"ordering_strategy must be one of {ORDERING_STRATEGIES}, "
                f"got {self.ordering_strategy!r}"
            )
        if self.ordering_iterations < 1:
            raise ValueError("ordering_iterations must be >= 1")
        if self.subgraph_cache_size < 1:
            raise ValueError("subgraph_cache_size must be >= 1")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be > 0, got {self.deadline_ms}")
        if self.portfolio_budget is not None and self.portfolio_budget < 1:
            raise ValueError(
                f"portfolio_budget must be >= 1, got {self.portfolio_budget}"
            )
        if self.scheduling_policy not in ("asap", "alap"):
            raise ValueError("scheduling_policy must be 'asap' or 'alap'")
        if self.gf2_backend is not None and self.gf2_backend not in BACKENDS:
            raise ValueError(
                f"gf2_backend must be one of {BACKENDS} or None, "
                f"got {self.gf2_backend!r}"
            )
        if self.stream_chunk < 1:
            raise ValueError(f"stream_chunk must be >= 1, got {self.stream_chunk}")

    def with_overrides(self, **kwargs) -> "CompilerConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)
