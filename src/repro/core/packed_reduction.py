"""Bitset-native reduction fast path.

:class:`PackedReductionState` is a drop-in replacement for
:class:`repro.core.reduction.ReductionState` that stores the working graph as
one arbitrary-precision integer adjacency row per vertex — the same
representation as :class:`repro.graphs.graph_state.PackedAdjacency` — instead
of a tuple-keyed :class:`networkx` graph.  Vertex indices are fixed:

* photon ``p`` occupies bit ``p`` (``0 <= p < num_photons``);
* emitter ``e`` occupies bit ``num_photons + e`` (ids are allocated
  sequentially, so the row list simply grows).

Every reversed operation of the rewrite engine becomes a handful of word-run
XOR/AND/mask updates (``O(n/64)`` per touched row), and the rule queries of
the greedy strategy collapse to popcounts and row comparisons:

* degree = ``row.bit_count()``;
* dangling test = ``row.bit_count() == 1``;
* twin test = integer row equality;
* photon/emitter neighbour splits = one mask and one shift.

The class answers the exact rule-query protocol of
:class:`~repro.core.reduction.ReductionState` (same tie-breaking, same
emitter-pool bookkeeping), so the greedy strategy produces **bit-identical
operation sequences** — and therefore bit-identical forward circuits — on
either state.  The dict-based state remains the oracle;
``tests/test_packed_reduction.py`` property-tests the equivalence across the
scenario zoo.  Selection follows :mod:`repro.utils.backend` like the other
GF(2) kernels: :func:`make_reduction_state` returns the packed state on the
``packed`` backend and the networkx oracle on ``dense``.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.core.reduction import (
    InsufficientEmittersError,
    ReductionOp,
    ReductionOpType,
    ReductionSequence,
    ReductionState,
)
from repro.graphs.graph_state import GraphState
from repro.utils.backend import PACKED, resolve_backend
from repro.utils.misc import iter_bits

__all__ = ["PackedReductionState", "make_reduction_state"]

Vertex = Hashable


class PackedReductionState:
    """Mutable reduction state over integer-packed adjacency rows.

    The public surface mirrors :class:`repro.core.reduction.ReductionState`
    exactly (construction, queries, the seven reversed operations, pool
    bookkeeping and :meth:`finish`); only the storage differs.  See the
    module docstring for the bit layout.
    """

    def __init__(
        self,
        target_graph: GraphState,
        emitter_budget: int | None = None,
        strict_budget: bool = False,
        photon_order: Sequence[Vertex] | None = None,
    ):
        if target_graph.num_vertices == 0:
            raise ValueError("cannot reduce an empty target graph")
        vertices = list(photon_order) if photon_order is not None else target_graph.vertices()
        if (
            set(vertices) != set(target_graph.vertices())
            or len(vertices) != target_graph.num_vertices
        ):
            raise ValueError("photon_order must be a permutation of the target vertices")
        self.photon_of_vertex: dict[Vertex, int] = {v: i for i, v in enumerate(vertices)}
        self.num_photons = len(vertices)
        self.emitter_budget = emitter_budget
        self.strict_budget = bool(strict_budget)
        self.emitters_over_budget = 0

        self._photon_mask = (1 << self.num_photons) - 1
        self._alive_photons = self._photon_mask
        packed = target_graph.packed_adjacency()
        if photon_order is None or packed.index == self.photon_of_vertex:
            # The graph's cached packed rows already follow insertion order —
            # exactly this state's photon indexing.  Order searches build
            # many states over one subgraph; they all share the one snapshot.
            self._rows = list(packed.rows)
        else:
            self._rows = [0] * self.num_photons
            for u, v in target_graph.edges():
                i, j = self.photon_of_vertex[u], self.photon_of_vertex[v]
                self._rows[i] |= 1 << j
                self._rows[j] |= 1 << i

        self.free_emitters: set[int] = set()
        self.active_emitters: set[int] = set()
        self.num_emitters_allocated = 0
        self.operations: list[ReductionOp] = []

    # ------------------------------------------------------------------ #
    # Index helpers
    # ------------------------------------------------------------------ #

    def _eidx(self, emitter: int) -> int:
        return self.num_photons + emitter

    def _ensure_row(self, emitter: int) -> None:
        needed = self._eidx(emitter) + 1
        if len(self._rows) < needed:
            self._rows.extend([0] * (needed - len(self._rows)))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def remaining_photons(self) -> list[int]:
        """Photon indices still present in the working graph."""
        return list(iter_bits(self._alive_photons))

    def photon_in_graph(self, photon: int) -> bool:
        if not 0 <= photon < self.num_photons:
            return False
        return bool((self._alive_photons >> photon) & 1)

    def photon_neighbors(self, photon: int) -> tuple[set[int], set[int]]:
        """Neighbours of a photon, split into (photon indices, emitter ids)."""
        row = self._rows[photon]
        return (
            set(iter_bits(row & self._photon_mask)),
            set(iter_bits(row >> self.num_photons)),
        )

    def emitter_neighbors(self, emitter: int) -> tuple[set[int], set[int]]:
        """Neighbours of an emitter, split into (photon indices, emitter ids)."""
        row = self._rows[self._eidx(emitter)]
        return (
            set(iter_bits(row & self._photon_mask)),
            set(iter_bits(row >> self.num_photons)),
        )

    def emitter_degree(self, emitter: int) -> int:
        return self._rows[self._eidx(emitter)].bit_count()

    def photon_degree(self, photon: int) -> int:
        return self._rows[photon].bit_count()

    def is_done(self) -> bool:
        """True when every photon has been removed and every emitter is free."""
        return not self._alive_photons and not self.active_emitters

    # ------------------------------------------------------------------ #
    # Rule queries (bit-identical to the dict-based oracle)
    # ------------------------------------------------------------------ #

    def photon_neighbor_counts(self, photon: int) -> tuple[int, int]:
        """``(#photon neighbours, #emitter neighbours)`` of a photon."""
        row = self._rows[photon]
        return (row & self._photon_mask).bit_count(), (row >> self.num_photons).bit_count()

    def find_dangling_emitter(self, photon: int) -> int | None:
        """Smallest emitter adjacent to ``photon`` whose only neighbour is it."""
        n = self.num_photons
        for bit in iter_bits(self._rows[photon] >> n):
            if self._rows[n + bit].bit_count() == 1:
                return bit
        return None

    def find_leaf_host(self, photon: int) -> int | None:
        """The emitter hosting ``photon`` when the photon has degree 1."""
        row = self._rows[photon]
        if row.bit_count() != 1:
            return None
        bit = row.bit_length() - 1
        return bit - self.num_photons if bit >= self.num_photons else None

    def find_twin_emitter(self, photon: int) -> int | None:
        """First active emitter (ascending id) that is a non-adjacent twin."""
        row = self._rows[photon]
        n = self.num_photons
        for emitter in sorted(self.active_emitters):
            if (row >> (n + emitter)) & 1:
                continue
            if self._rows[n + emitter] == row:
                return emitter
        return None

    def disconnect_absorb_candidate(self, photon: int) -> tuple[int, int] | None:
        """Best ``(cost, emitter)`` for the disconnect-absorb move, or ``None``."""
        n = self.num_photons
        photon_bit = 1 << photon
        best: tuple[int, int] | None = None
        for e in iter_bits(self._rows[photon] >> n):
            erow = self._rows[n + e]
            if erow & self._photon_mask != photon_bit:
                continue  # the emitter has other photon neighbours
            cost = (erow >> n).bit_count()
            if best is None or cost < best[0]:
                best = (cost, e)
        return best

    def liberation_candidate(self) -> tuple[int, int] | None:
        """Best ``(cost, emitter)`` freeable by disconnecting it, or ``None``."""
        n = self.num_photons
        best: tuple[int, int] | None = None
        for emitter in sorted(self.active_emitters):
            erow = self._rows[n + emitter]
            if erow & self._photon_mask:
                continue
            cost = (erow >> n).bit_count()
            if best is None or cost < best[0]:
                best = (cost, emitter)
        return best

    # ------------------------------------------------------------------ #
    # Emitter pool management (identical semantics to the oracle)
    # ------------------------------------------------------------------ #

    def acquire_free_emitter(self, preferred: int | None = None) -> int:
        """Return a free emitter id, allocating a new one if needed."""
        if preferred is not None and preferred in self.free_emitters:
            self.free_emitters.discard(preferred)
            self.active_emitters.add(preferred)
            return preferred
        if self.free_emitters:
            chosen = min(self.free_emitters)
            self.free_emitters.discard(chosen)
            self.active_emitters.add(chosen)
            return chosen
        if (
            self.emitter_budget is not None
            and self.num_emitters_allocated >= self.emitter_budget
        ):
            if self.strict_budget:
                raise InsufficientEmittersError(
                    f"emitter budget of {self.emitter_budget} exhausted"
                )
            self.emitters_over_budget += 1
        new_id = self.num_emitters_allocated
        self.num_emitters_allocated += 1
        self.active_emitters.add(new_id)
        self._ensure_row(new_id)
        return new_id

    # ------------------------------------------------------------------ #
    # Row update helpers
    # ------------------------------------------------------------------ #

    def _remove_vertex_bit(self, index: int) -> None:
        """Clear ``index``'s bit from every neighbour row and zero its row."""
        bit = 1 << index
        for j in iter_bits(self._rows[index]):
            self._rows[j] &= ~bit
        self._rows[index] = 0

    def _replace_photon_by_emitter(self, photon: int, emitter_index: int) -> None:
        """Move ``photon``'s neighbourhood onto row ``emitter_index``."""
        row = self._rows[photon]
        photon_bit = 1 << photon
        emitter_bit = 1 << emitter_index
        self._rows[emitter_index] = row
        for j in iter_bits(row):
            self._rows[j] = (self._rows[j] & ~photon_bit) | emitter_bit
        self._rows[photon] = 0

    # ------------------------------------------------------------------ #
    # Reversed operations
    # ------------------------------------------------------------------ #

    def apply_swap(self, photon: int, emitter: int | None = None, tag: str = "") -> int:
        """Replace ``photon`` by a free emitter; returns the emitter id used."""
        if not self.photon_in_graph(photon):
            raise ValueError(f"photon {photon} is not in the working graph")
        emitter_id = self.acquire_free_emitter(preferred=emitter)
        self._replace_photon_by_emitter(photon, self._eidx(emitter_id))
        self._alive_photons &= ~(1 << photon)
        self.operations.append(
            ReductionOp(ReductionOpType.SWAP, emitter=emitter_id, photon=photon, tag=tag)
        )
        return emitter_id

    def apply_absorb_leaf(self, emitter: int, photon: int, tag: str = "") -> None:
        """Absorb a photon that dangles on ``emitter`` (degree-1 photon)."""
        if not self.photon_in_graph(photon):
            raise ValueError(f"photon {photon} is not in the working graph")
        eidx = self._eidx(emitter)
        if self._rows[photon] != 1 << eidx:
            raise ValueError(
                f"photon {photon} is not dangling on emitter {emitter}; "
                "ABSORB_LEAF precondition violated"
            )
        self._rows[eidx] &= ~(1 << photon)
        self._rows[photon] = 0
        self._alive_photons &= ~(1 << photon)
        self.operations.append(
            ReductionOp(ReductionOpType.ABSORB_LEAF, emitter=emitter, photon=photon, tag=tag)
        )

    def apply_absorb_dangling(self, emitter: int, photon: int, tag: str = "") -> None:
        """Absorb ``photon`` into a dangling emitter that is attached to it."""
        if not self.photon_in_graph(photon):
            raise ValueError(f"photon {photon} is not in the working graph")
        eidx = self._eidx(emitter)
        if self._rows[eidx] != 1 << photon:
            raise ValueError(
                f"emitter {emitter} is not dangling on photon {photon}; "
                "ABSORB_DANGLING precondition violated"
            )
        photon_bit = 1 << photon
        emitter_bit = 1 << eidx
        inherited = self._rows[photon] & ~emitter_bit
        self._rows[eidx] = inherited
        for j in iter_bits(inherited):
            self._rows[j] = (self._rows[j] & ~photon_bit) | emitter_bit
        self._rows[photon] = 0
        self._alive_photons &= ~photon_bit
        self.operations.append(
            ReductionOp(
                ReductionOpType.ABSORB_DANGLING, emitter=emitter, photon=photon, tag=tag
            )
        )

    def apply_absorb_twin(self, emitter: int, photon: int, tag: str = "") -> None:
        """Absorb ``photon`` when it has exactly the emitter's neighbourhood."""
        if not self.photon_in_graph(photon):
            raise ValueError(f"photon {photon} is not in the working graph")
        eidx = self._eidx(emitter)
        if (self._rows[photon] >> eidx) & 1:
            raise ValueError(
                f"photon {photon} and emitter {emitter} are adjacent; "
                "ABSORB_TWIN requires non-adjacent twins"
            )
        if self._rows[photon] != self._rows[eidx]:
            raise ValueError(
                f"photon {photon} and emitter {emitter} are not twins; "
                "ABSORB_TWIN precondition violated"
            )
        self._remove_vertex_bit(photon)
        self._alive_photons &= ~(1 << photon)
        self.operations.append(
            ReductionOp(ReductionOpType.ABSORB_TWIN, emitter=emitter, photon=photon, tag=tag)
        )

    def apply_disconnect(self, emitter_a: int, emitter_b: int, tag: str = "") -> None:
        """Remove an emitter-emitter edge (forward: one CZ gate)."""
        idx_a, idx_b = self._eidx(emitter_a), self._eidx(emitter_b)
        if not (self._rows[idx_a] >> idx_b) & 1:
            raise ValueError(
                f"emitters {emitter_a} and {emitter_b} are not adjacent; nothing to disconnect"
            )
        self._rows[idx_a] &= ~(1 << idx_b)
        self._rows[idx_b] &= ~(1 << idx_a)
        self.operations.append(
            ReductionOp(
                ReductionOpType.DISCONNECT, emitter=emitter_a, emitter_b=emitter_b, tag=tag
            )
        )

    def apply_emit_isolated(self, photon: int, emitter: int | None = None, tag: str = "") -> int:
        """Remove an isolated photon (forward: emit an unentangled photon)."""
        if not self.photon_in_graph(photon):
            raise ValueError(f"photon {photon} is not in the working graph")
        if self._rows[photon]:
            raise ValueError(f"photon {photon} is not isolated")
        if emitter is not None and emitter in self.free_emitters:
            emitter_id = emitter
        elif self.free_emitters:
            emitter_id = min(self.free_emitters)
        else:
            # Allocate a pool slot but keep it free: the emitter is only used
            # as an emission source and never becomes entangled.
            emitter_id = self.acquire_free_emitter()
            self.active_emitters.discard(emitter_id)
            self.free_emitters.add(emitter_id)
        self._alive_photons &= ~(1 << photon)
        self.operations.append(
            ReductionOp(
                ReductionOpType.EMIT_ISOLATED, emitter=emitter_id, photon=photon, tag=tag
            )
        )
        return emitter_id

    def apply_free_emitter(self, emitter: int, tag: str = "") -> None:
        """Release an isolated active emitter back into the free pool."""
        if emitter not in self.active_emitters:
            raise ValueError(f"emitter {emitter} is not active")
        if self._rows[self._eidx(emitter)]:
            raise ValueError(f"emitter {emitter} is not isolated and cannot be freed")
        self.active_emitters.discard(emitter)
        self.free_emitters.add(emitter)
        self.operations.append(
            ReductionOp(ReductionOpType.FREE_EMITTER, emitter=emitter, tag=tag)
        )

    def free_isolated_emitters(self, tag: str = "") -> list[int]:
        """Free every active emitter that has become isolated; return their ids."""
        freed = []
        for emitter in sorted(self.active_emitters):
            if not self._rows[self._eidx(emitter)]:
                self.apply_free_emitter(emitter, tag=tag)
                freed.append(emitter)
        return freed

    # ------------------------------------------------------------------ #
    # Finishing
    # ------------------------------------------------------------------ #

    def disconnect_all_emitter_edges(self, tag: str = "") -> int:
        """Remove every remaining emitter-emitter edge in one sorted pass."""
        n = self.num_photons
        pairs = [
            (emitter, emitter + 1 + shifted)
            for emitter in sorted(self.active_emitters)
            for shifted in iter_bits(self._rows[n + emitter] >> (n + emitter + 1))
        ]
        for a, b in pairs:
            self.apply_disconnect(a, b, tag=tag)
        return len(pairs)

    def finish(self, tag: str = "") -> ReductionSequence:
        """Disconnect leftover emitter edges, free emitters, return the sequence."""
        if self._alive_photons:
            raise RuntimeError(
                "cannot finish the reduction: photons remain in the working graph "
                f"({self.remaining_photons()})"
            )
        self.disconnect_all_emitter_edges(tag=tag)
        self.free_isolated_emitters(tag=tag)
        if self.active_emitters:  # pragma: no cover - defensive
            raise RuntimeError(f"emitters left active after finish: {self.active_emitters}")
        return ReductionSequence(
            operations=list(self.operations),
            num_photons=self.num_photons,
            num_emitters=max(self.num_emitters_allocated, 1),
            photon_of_vertex=dict(self.photon_of_vertex),
            emitters_over_budget=self.emitters_over_budget,
        )


def make_reduction_state(
    target_graph: GraphState,
    emitter_budget: int | None = None,
    strict_budget: bool = False,
    photon_order: Sequence[Vertex] | None = None,
    backend: str | None = None,
) -> "ReductionState | PackedReductionState":
    """Build a reduction state on the selected GF(2) backend.

    ``backend=None`` resolves to the process default
    (:func:`repro.utils.backend.get_default_backend`): ``packed`` returns the
    bitset-native :class:`PackedReductionState`, ``dense`` the networkx-backed
    :class:`~repro.core.reduction.ReductionState` oracle.  Both produce
    bit-identical operation sequences for identical inputs.
    """
    cls = PackedReductionState if resolve_backend(backend) == PACKED else ReductionState
    return cls(
        target_graph,
        emitter_budget=emitter_budget,
        strict_budget=strict_budget,
        photon_order=photon_order,
    )
