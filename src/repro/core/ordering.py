"""Emission-ordering optimisation over the incremental cut-rank engine.

The minimal-emitter bound ``N_e^min = max_i h(i)`` depends on the photon
emission ordering; the natural label order used by the baseline (and by the
compiler's budget sizing) is rarely the best one.  This module searches the
ordering space for a lower peak height:

* ``"natural"`` — the graph's vertex order, evaluated but not searched;
* ``"greedy"`` — peak-height descent: grow the prefix one photon at a time,
  always picking a frontier vertex whose appended cut rank is smallest
  (dropping the height wherever possible);
* ``"anneal"`` — the greedy result refined by
  :func:`repro.solvers.annealing.simulated_annealing` over suffix mutations
  (swap / move), with every candidate ordering re-evaluated incrementally
  from the first changed position via the engine's prefix checkpoints.

Whatever the strategy, the optimiser never returns an ordering whose peak
exceeds the natural baseline: the natural ordering is always in the
candidate pool, so ``peak_height <= natural_peak`` holds by construction.
Framing note: evaluating one more ordering is a *sequential* decision made
cheap by the incremental engine — the dynamic-algorithm-configuration view
of the ordering search (cf. CANDID / reward-design DAC in PAPERS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np

from repro.graphs.graph_state import GraphState
from repro.graphs.incremental import CutRankEngine
from repro.solvers.annealing import simulated_annealing
from repro.utils.misc import make_rng

__all__ = [
    "ORDERING_STRATEGIES",
    "OrderingResult",
    "optimize_emission_ordering",
]

Vertex = Hashable

#: Recognised values of ``CompilerConfig.ordering_strategy``.
ORDERING_STRATEGIES = ("natural", "greedy", "anneal")

#: Cap on the candidates scanned per greedy step; keeps the descent at
#: ``O(n * cap)`` engine appends on dense graphs while still examining every
#: frontier vertex on the sparse families the compiler sweeps.
_GREEDY_SCAN_CAP = 48


@dataclass(frozen=True)
class OrderingResult:
    """Outcome of :func:`optimize_emission_ordering`.

    Attributes:
        ordering: the best emission ordering found (forward time: the first
            entry is emitted first).
        peak_height: ``max_i h(i)`` of that ordering — the emitter bound it
            certifies.
        natural_peak: the same peak for the graph's natural vertex order (the
            baseline the optimiser is guaranteed not to exceed).
        strategy: the strategy that produced the result.
        evaluations: number of engine appends/orderings examined (search
            effort bookkeeping for benchmarks and tests).
    """

    ordering: tuple[Vertex, ...]
    peak_height: int
    natural_peak: int
    strategy: str
    evaluations: int

    @property
    def improved(self) -> bool:
        """True when the search beat the natural-order peak."""
        return self.peak_height < self.natural_peak


def _energy(heights: Sequence[int], scale: int) -> float:
    """Lexicographic (peak, total) objective encoded as one number.

    ``scale`` must exceed any possible total height sum so the peak always
    dominates; the secondary term rewards orderings that keep the *whole*
    profile low, which gives the annealer a gradient between equal peaks.
    """
    return float(max(heights) * scale + sum(heights))


def _greedy_descent(
    graph: GraphState, engine: CutRankEngine
) -> tuple[list[Vertex], list[int], int]:
    """Peak-height-descent construction of an emission ordering.

    Frontier vertices (unused neighbours of the prefix) are the only ones
    that can lower the height, so they are scanned first; a candidate that
    strictly drops the height is taken immediately.  Returns the ordering,
    its height profile and the number of trial appends performed.
    """
    vertices = graph.vertices()
    stable_index = {v: i for i, v in enumerate(vertices)}
    engine.reset()
    unused = set(vertices)
    frontier: set[Vertex] = set()
    ordering: list[Vertex] = []
    current_height = 0
    appends = 0
    while unused:
        pool = frontier if frontier else unused
        candidates = sorted(pool, key=stable_index.__getitem__)
        if len(candidates) > _GREEDY_SCAN_CAP:
            candidates = candidates[:_GREEDY_SCAN_CAP]
        best_vertex = candidates[0]
        best_height: int | None = None
        for vertex in candidates:
            trial_height = engine.append(vertex)
            engine.truncate(len(ordering))
            appends += 1
            if best_height is None or trial_height < best_height:
                best_vertex, best_height = vertex, trial_height
                if trial_height < current_height:
                    break
        current_height = engine.append(best_vertex)
        appends += 1
        ordering.append(best_vertex)
        unused.remove(best_vertex)
        frontier.discard(best_vertex)
        frontier |= graph.neighbors(best_vertex) & unused
    return ordering, engine.heights_so_far, appends


def _mutate_ordering(ordering: list[Vertex], rng: np.random.Generator) -> list[Vertex]:
    """Swap two positions or move one vertex (the annealing neighbourhood)."""
    mutated = list(ordering)
    n = len(mutated)
    i = int(rng.integers(n))
    j = int(rng.integers(n - 1))
    if j >= i:
        j += 1
    if rng.random() < 0.5:
        mutated[i], mutated[j] = mutated[j], mutated[i]
    else:
        mutated.insert(j, mutated.pop(i))
    return mutated


def optimize_emission_ordering(
    graph: GraphState,
    strategy: str = "greedy",
    *,
    seed: int | np.random.Generator | None = None,
    iterations: int = 150,
    engine: CutRankEngine | None = None,
) -> OrderingResult:
    """Search for an emission ordering with a low peak height.

    Parameters
    ----------
    graph : GraphState
        The target graph state.
    strategy : str, optional
        One of :data:`ORDERING_STRATEGIES`.
    seed : int | numpy.random.Generator | None, optional
        RNG for the annealing refinement (ignored by the deterministic
        strategies).
    iterations : int, optional
        Annealing proposal steps (``"anneal"`` only).
    engine : CutRankEngine | None, optional
        Reuse an existing engine for the same graph (e.g. across repeated
        optimisation calls); one is built on demand otherwise.  The greedy
        and annealing searches roll trial appends back, so the engine must
        have been built with ``checkpoint=True`` (the default).

    Returns
    -------
    OrderingResult
        Best ordering found; its peak never exceeds the natural-order peak.
    """
    if strategy not in ORDERING_STRATEGIES:
        raise ValueError(
            f"unknown ordering strategy {strategy!r}; expected one of "
            f"{ORDERING_STRATEGIES}"
        )
    vertices = graph.vertices()
    n = len(vertices)
    if n == 0:
        return OrderingResult((), 0, 0, strategy, 0)
    if engine is None:
        engine = CutRankEngine(graph)
    elif strategy != "natural" and not engine.checkpointing:
        raise ValueError(
            "the greedy/anneal searches need an engine built with "
            "checkpoint=True to roll trial appends back"
        )
    scale = n * (n + 1) + 1

    natural_heights = engine.heights(vertices)
    natural_peak = max(natural_heights)
    evaluations = 1
    best_ordering = list(vertices)
    best_energy = _energy(natural_heights, scale)

    if strategy in ("greedy", "anneal") and n > 1:
        greedy_ordering, greedy_heights, appends = _greedy_descent(graph, engine)
        evaluations += appends
        greedy_energy = _energy(greedy_heights, scale)
        if greedy_energy < best_energy:
            best_ordering, best_energy = greedy_ordering, greedy_energy

    if strategy == "anneal" and n > 2 and iterations > 0:
        rng = make_rng(seed)

        def energy(ordering: list[Vertex]) -> float:
            """Annealing objective: incremental re-evaluation of the ordering."""
            return _energy(engine.heights(ordering), scale)

        annealed = simulated_annealing(
            list(best_ordering),
            energy,
            _mutate_ordering,
            num_iterations=iterations,
            seed=rng,
        )
        evaluations += annealed.iterations + 1
        if annealed.best_energy < best_energy:
            best_ordering = list(annealed.best_state)
            best_energy = annealed.best_energy

    peak = int(best_energy) // scale
    return OrderingResult(
        ordering=tuple(best_ordering),
        peak_height=peak,
        natural_peak=natural_peak,
        strategy=strategy,
        evaluations=evaluations,
    )
