"""Subgraph recombination and circuit scheduling (paper §IV.C).

The scheduler decides

* in which order the subgraph circuits appear on the timeline — the paper's
  as-late-as-possible policy driven by the priority ``P_c = n_p / T_c``
  (subcircuits with many photons and short duration are placed *late* so
  their photons spend the least time waiting);
* which physical emitters each subgraph uses — the "Tetris" packing of each
  subgraph's emitter-usage block under the global emitter cap ``N_e^limit``,
  which is what enables emitter reuse across subgraphs and keeps utilisation
  close to the cap at every time slot;
* which flexible-constraint variant of each subgraph to use — when the cap
  leaves emitters idle, a variant compiled with one or two extra emitters
  (and hence a shorter, more parallel subcircuit) is selected instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

from repro.core.subgraph_compiler import SubgraphCompilationResult

__all__ = ["ScheduledSubgraph", "SchedulePlan", "SubgraphScheduler"]

Vertex = Hashable


@dataclass
class ScheduledSubgraph:
    """Placement decision for one subgraph."""

    block_index: int
    result: SubgraphCompilationResult
    emitter_ids: list[int]
    start_time: float
    priority: float

    @property
    def duration(self) -> float:
        return self.result.duration

    @property
    def end_time(self) -> float:
        return self.start_time + self.duration

    @property
    def num_photons(self) -> int:
        return self.result.num_photons


@dataclass
class SchedulePlan:
    """The full recombination plan."""

    scheduled: list[ScheduledSubgraph]
    emitter_limit: int
    makespan_estimate: float

    def emission_vertex_order(self) -> list[Vertex]:
        """Global forward emission order implied by the plan.

        Subgraphs are emitted in increasing start time; within a subgraph the
        order found by the subgraph compiler is kept.
        """
        order: list[Vertex] = []
        for item in sorted(self.scheduled, key=lambda s: (s.start_time, s.block_index)):
            order.extend(item.result.emission_order())
        return order

    def reversed_processing_plan(self) -> list[ScheduledSubgraph]:
        """Subgraphs in reversed-time processing order (latest block first)."""
        return sorted(
            self.scheduled, key=lambda s: (s.start_time, s.block_index), reverse=True
        )

    def utilisation(self) -> float:
        """Average fraction of the emitter cap that is busy over the makespan."""
        if self.makespan_estimate <= 0 or self.emitter_limit <= 0:
            return 0.0
        busy_area = sum(len(s.emitter_ids) * s.duration for s in self.scheduled)
        return busy_area / (self.emitter_limit * self.makespan_estimate)


class SubgraphScheduler:
    """Priority-driven Tetris packing of subgraph circuits onto the emitter pool."""

    def __init__(self, emitter_limit: int):
        if emitter_limit < 1:
            raise ValueError(f"emitter_limit must be >= 1, got {emitter_limit}")
        self.emitter_limit = emitter_limit

    def schedule(
        self,
        variants_per_block: Sequence[Mapping[int, SubgraphCompilationResult]],
    ) -> SchedulePlan:
        """Place every block on the timeline.

        Args:
            variants_per_block: for each block, the flexible-constraint
                variants keyed by emitter budget (as produced by
                :meth:`repro.core.subgraph_compiler.SubgraphCompiler.compile_flexible`).

        Returns:
            A :class:`SchedulePlan`.  Start times are *estimates* based on the
            per-subgraph circuit durations; the final circuit is re-scheduled
            at gate level afterwards, so they only drive ordering and emitter
            affinity.
        """
        if not variants_per_block:
            raise ValueError("nothing to schedule")

        # Baseline variant (the one with the fewest emitters) defines the
        # priority used for ordering.
        base_results = [
            variants[min(variants)] for variants in variants_per_block
        ]
        priorities = [result.priority for result in base_results]

        # Low priority (few photons, long duration) is emitted early, i.e.
        # scheduled first on the forward timeline; high priority is emitted
        # late.  Ties broken by block index for determinism.
        order = sorted(
            range(len(base_results)), key=lambda i: (priorities[i], i)
        )

        emitter_available = [0.0] * self.emitter_limit
        scheduled: list[ScheduledSubgraph] = []
        for block_index in order:
            variants = variants_per_block[block_index]
            best_choice: tuple[float, int, list[int], float] | None = None
            for budget, result in sorted(variants.items()):
                needed = min(max(result.num_emitters_used, 1), self.emitter_limit)
                slots = sorted(
                    range(self.emitter_limit), key=lambda e: (emitter_available[e], e)
                )[:needed]
                start = max(emitter_available[e] for e in slots)
                finish = start + result.duration
                if best_choice is None or finish < best_choice[0] - 1e-12:
                    best_choice = (finish, budget, slots, start)
            assert best_choice is not None
            finish, budget, slots, start = best_choice
            result = variants[budget]
            for e in slots:
                emitter_available[e] = finish
            scheduled.append(
                ScheduledSubgraph(
                    block_index=block_index,
                    result=result,
                    emitter_ids=list(slots),
                    start_time=start,
                    priority=priorities[block_index],
                )
            )

        makespan = max((s.end_time for s in scheduled), default=0.0)
        return SchedulePlan(
            scheduled=scheduled,
            emitter_limit=self.emitter_limit,
            makespan_estimate=makespan,
        )
