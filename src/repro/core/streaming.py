"""Streaming partition-compile for very large graph families.

The whole-graph compilers materialise the target state (networkx graph,
packed adjacency, reduction rows) before reducing it, so peak memory grows
with ``n`` even though the reduction itself only ever inspects one photon's
neighbourhood plus the emitter pool.  This module exploits that locality:
:func:`compile_stream` walks a lazy generator spec
(:mod:`repro.graphs.lazy`) region by region, keeps only a bounded *window*
of the graph alive, and streams the reduction operations to a sink instead
of accumulating them — peak memory is bounded by two adjacent regions plus
the emitter pool (the *frontier*), not by ``n``.

Correctness argument.  The greedy rule engine
(:func:`repro.core.strategies.reduce_photon`) queries only

* the photon's own adjacency row (degree, neighbour split, leaf test),
* the rows of emitters (all of which the window tracks permanently), and
* the emitter pool bookkeeping,

so a windowed state answers every query identically to the whole-graph state
**provided all neighbours of the photon being reduced are admitted**.  The
driver admits regions in descending order and reduces region ``j + 1`` only
after region ``j`` is present; the specs' region locality contract (edges
span at most one region, or reach a pinned hub admitted up front) then
guarantees the proviso.  Reduced photons are fully detached from the working
graph, so their window slots are recycled.  Because the processing order
(descending vertex id: region ``J-1`` down to region ``0``, pinned hubs
last) equals the whole-graph default, the streamed operation sequence is
**bit-identical** to ``greedy_reduce(spec.materialize())`` — which is
exactly what the oracle tests assert at small sizes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.core.reduction import (
    InsufficientEmittersError,
    ReductionOp,
    ReductionOpType,
)
from repro.core.strategies import GreedyReductionStrategy, reduce_photon
from repro.utils.misc import iter_bits

__all__ = ["StreamCompileResult", "StreamingReductionState", "compile_stream"]

OpSink = Callable[[ReductionOp], None]


class StreamingReductionState:
    """Windowed reduction state: bounded slots, global photon ids, op sink.

    Photons are *admitted* into one of ``window_capacity`` slots (bit ``s``
    for slot ``s``, emitter ``e`` at bit ``window_capacity + e``) and their
    slots are recycled once the reduction detaches them.  The rule-query
    protocol is the same as :class:`repro.core.reduction.ReductionState` —
    identical tie-breaking, identical pool bookkeeping — except that photons
    are named by their **global** vertex id (the admitted window translates
    to slots internally), so emitted operations carry the same ids as a
    whole-graph reduction over the same processing order.

    Operations go to ``op_sink`` when given (constant memory); otherwise they
    accumulate in ``self.operations`` for the small-size oracle tests.
    """

    def __init__(
        self,
        window_capacity: int,
        emitter_budget: int | None = None,
        strict_budget: bool = False,
        op_sink: OpSink | None = None,
    ):
        if window_capacity < 1:
            raise ValueError(f"window_capacity must be >= 1, got {window_capacity}")
        self._cap = int(window_capacity)
        self._photon_mask = (1 << self._cap) - 1
        self._rows: list[int] = [0] * self._cap
        self._slot_of: dict[int, int] = {}
        self._global_of: list[int | None] = [None] * self._cap
        self._free_slots = list(range(self._cap - 1, -1, -1))
        self.peak_window_photons = 0
        self.photons_admitted = 0
        self.photons_reduced = 0

        self.emitter_budget = emitter_budget
        self.strict_budget = bool(strict_budget)
        self.emitters_over_budget = 0
        self.free_emitters: set[int] = set()
        self.active_emitters: set[int] = set()
        self.num_emitters_allocated = 0

        self._op_sink = op_sink
        self.operations: list[ReductionOp] = []

    # ------------------------------------------------------------------ #
    # Window management
    # ------------------------------------------------------------------ #

    @property
    def window_capacity(self) -> int:
        return self._cap

    @property
    def window_size(self) -> int:
        """Photons currently admitted (excluding emitters)."""
        return len(self._slot_of)

    def admit_photon(self, photon: int) -> None:
        """Bring ``photon`` (a global vertex id) into the window, degree 0."""
        if photon in self._slot_of:
            raise ValueError(f"photon {photon} is already admitted")
        if not self._free_slots:
            raise RuntimeError(
                f"streaming window capacity {self._cap} exhausted; the spec's "
                "region locality contract is violated or the window is too small"
            )
        slot = self._free_slots.pop()
        self._rows[slot] = 0
        self._slot_of[photon] = slot
        self._global_of[slot] = photon
        self.photons_admitted += 1
        if len(self._slot_of) > self.peak_window_photons:
            self.peak_window_photons = len(self._slot_of)

    def add_edge(self, u: int, v: int) -> None:
        """Connect two admitted photons (global vertex ids)."""
        su, sv = self._slot_of[u], self._slot_of[v]
        if su == sv:
            raise ValueError(f"self-loop on photon {u}")
        self._rows[su] |= 1 << sv
        self._rows[sv] |= 1 << su

    def _release(self, photon: int) -> None:
        """Recycle the slot of a fully-detached photon."""
        slot = self._slot_of.pop(photon)
        self._rows[slot] = 0
        self._global_of[slot] = None
        self._free_slots.append(slot)
        self.photons_reduced += 1

    def _emit(self, op: ReductionOp) -> None:
        if self._op_sink is not None:
            self._op_sink(op)
        else:
            self.operations.append(op)

    # ------------------------------------------------------------------ #
    # Index helpers
    # ------------------------------------------------------------------ #

    def _eidx(self, emitter: int) -> int:
        return self._cap + emitter

    def _ensure_row(self, emitter: int) -> None:
        needed = self._eidx(emitter) + 1
        if len(self._rows) < needed:
            self._rows.extend([0] * (needed - len(self._rows)))

    # ------------------------------------------------------------------ #
    # Rule-query protocol (identical tie-breaking to the oracle)
    # ------------------------------------------------------------------ #

    def photon_in_graph(self, photon: int) -> bool:
        return photon in self._slot_of

    def photon_degree(self, photon: int) -> int:
        return self._rows[self._slot_of[photon]].bit_count()

    def photon_neighbors(self, photon: int) -> tuple[set[int], set[int]]:
        """Neighbours of a photon, split into (global photon ids, emitter ids)."""
        row = self._rows[self._slot_of[photon]]
        return (
            {self._global_of[s] for s in iter_bits(row & self._photon_mask)},
            set(iter_bits(row >> self._cap)),
        )

    def emitter_neighbors(self, emitter: int) -> tuple[set[int], set[int]]:
        """Neighbours of an emitter, split into (global photon ids, emitter ids)."""
        row = self._rows[self._eidx(emitter)]
        return (
            {self._global_of[s] for s in iter_bits(row & self._photon_mask)},
            set(iter_bits(row >> self._cap)),
        )

    def emitter_degree(self, emitter: int) -> int:
        return self._rows[self._eidx(emitter)].bit_count()

    def photon_neighbor_counts(self, photon: int) -> tuple[int, int]:
        row = self._rows[self._slot_of[photon]]
        return (row & self._photon_mask).bit_count(), (row >> self._cap).bit_count()

    def find_dangling_emitter(self, photon: int) -> int | None:
        for bit in iter_bits(self._rows[self._slot_of[photon]] >> self._cap):
            if self._rows[self._cap + bit].bit_count() == 1:
                return bit
        return None

    def find_leaf_host(self, photon: int) -> int | None:
        row = self._rows[self._slot_of[photon]]
        if row.bit_count() != 1:
            return None
        bit = row.bit_length() - 1
        return bit - self._cap if bit >= self._cap else None

    def find_twin_emitter(self, photon: int) -> int | None:
        rows = self._rows
        cap = self._cap
        row = rows[self._slot_of[photon]]
        if row == 0:
            # Degenerate (never reached through the rule priority: isolated
            # photons are emitted before the twin query): fall back to the
            # oracle's full sweep over the active pool.
            candidates = iter(sorted(self.active_emitters))
        else:
            # Any twin shares the photon's entire (non-empty) neighbourhood,
            # so it is adjacent to the photon's first neighbour — scanning
            # that neighbour's emitter list in ascending order visits every
            # twin candidate with the oracle's min-id tie-breaking, at
            # O(degree) instead of O(active pool).
            first_neighbor = (row & -row).bit_length() - 1
            candidates = iter_bits(rows[first_neighbor] >> cap)
        for emitter in candidates:
            if (row >> (cap + emitter)) & 1:
                continue
            if rows[cap + emitter] == row:
                return emitter
        return None

    def disconnect_absorb_candidate(self, photon: int) -> tuple[int, int] | None:
        slot = self._slot_of[photon]
        photon_bit = 1 << slot
        best: tuple[int, int] | None = None
        for e in iter_bits(self._rows[slot] >> self._cap):
            erow = self._rows[self._cap + e]
            if erow & self._photon_mask != photon_bit:
                continue
            cost = (erow >> self._cap).bit_count()
            if best is None or cost < best[0]:
                best = (cost, e)
        return best

    def liberation_candidate(self) -> tuple[int, int] | None:
        best: tuple[int, int] | None = None
        for emitter in sorted(self.active_emitters):
            erow = self._rows[self._eidx(emitter)]
            if erow & self._photon_mask:
                continue
            cost = (erow >> self._cap).bit_count()
            if best is None or cost < best[0]:
                best = (cost, emitter)
        return best

    # ------------------------------------------------------------------ #
    # Emitter pool management (identical semantics to the oracle)
    # ------------------------------------------------------------------ #

    def acquire_free_emitter(self, preferred: int | None = None) -> int:
        if preferred is not None and preferred in self.free_emitters:
            self.free_emitters.discard(preferred)
            self.active_emitters.add(preferred)
            return preferred
        if self.free_emitters:
            chosen = min(self.free_emitters)
            self.free_emitters.discard(chosen)
            self.active_emitters.add(chosen)
            return chosen
        if (
            self.emitter_budget is not None
            and self.num_emitters_allocated >= self.emitter_budget
        ):
            if self.strict_budget:
                raise InsufficientEmittersError(
                    f"emitter budget of {self.emitter_budget} exhausted"
                )
            self.emitters_over_budget += 1
        new_id = self.num_emitters_allocated
        self.num_emitters_allocated += 1
        self.active_emitters.add(new_id)
        self._ensure_row(new_id)
        return new_id

    # ------------------------------------------------------------------ #
    # Reversed operations (slot-space rows, global-id operations)
    # ------------------------------------------------------------------ #

    def _replace_slot_by_emitter(self, slot: int, emitter_index: int) -> None:
        row = self._rows[slot]
        slot_bit = 1 << slot
        emitter_bit = 1 << emitter_index
        self._rows[emitter_index] = row
        for j in iter_bits(row):
            self._rows[j] = (self._rows[j] & ~slot_bit) | emitter_bit
        self._rows[slot] = 0

    def apply_swap(self, photon: int, emitter: int | None = None, tag: str = "") -> int:
        if photon not in self._slot_of:
            raise ValueError(f"photon {photon} is not in the working graph")
        emitter_id = self.acquire_free_emitter(preferred=emitter)
        self._replace_slot_by_emitter(self._slot_of[photon], self._eidx(emitter_id))
        self._release(photon)
        self._emit(
            ReductionOp(ReductionOpType.SWAP, emitter=emitter_id, photon=photon, tag=tag)
        )
        return emitter_id

    def apply_absorb_leaf(self, emitter: int, photon: int, tag: str = "") -> None:
        if photon not in self._slot_of:
            raise ValueError(f"photon {photon} is not in the working graph")
        slot = self._slot_of[photon]
        eidx = self._eidx(emitter)
        if self._rows[slot] != 1 << eidx:
            raise ValueError(
                f"photon {photon} is not dangling on emitter {emitter}; "
                "ABSORB_LEAF precondition violated"
            )
        self._rows[eidx] &= ~(1 << slot)
        self._rows[slot] = 0
        self._release(photon)
        self._emit(
            ReductionOp(ReductionOpType.ABSORB_LEAF, emitter=emitter, photon=photon, tag=tag)
        )

    def apply_absorb_dangling(self, emitter: int, photon: int, tag: str = "") -> None:
        if photon not in self._slot_of:
            raise ValueError(f"photon {photon} is not in the working graph")
        slot = self._slot_of[photon]
        eidx = self._eidx(emitter)
        if self._rows[eidx] != 1 << slot:
            raise ValueError(
                f"emitter {emitter} is not dangling on photon {photon}; "
                "ABSORB_DANGLING precondition violated"
            )
        slot_bit = 1 << slot
        emitter_bit = 1 << eidx
        inherited = self._rows[slot] & ~emitter_bit
        self._rows[eidx] = inherited
        for j in iter_bits(inherited):
            self._rows[j] = (self._rows[j] & ~slot_bit) | emitter_bit
        self._rows[slot] = 0
        self._release(photon)
        self._emit(
            ReductionOp(
                ReductionOpType.ABSORB_DANGLING, emitter=emitter, photon=photon, tag=tag
            )
        )

    def apply_absorb_twin(self, emitter: int, photon: int, tag: str = "") -> None:
        if photon not in self._slot_of:
            raise ValueError(f"photon {photon} is not in the working graph")
        slot = self._slot_of[photon]
        eidx = self._eidx(emitter)
        if (self._rows[slot] >> eidx) & 1:
            raise ValueError(
                f"photon {photon} and emitter {emitter} are adjacent; "
                "ABSORB_TWIN requires non-adjacent twins"
            )
        if self._rows[slot] != self._rows[eidx]:
            raise ValueError(
                f"photon {photon} and emitter {emitter} are not twins; "
                "ABSORB_TWIN precondition violated"
            )
        slot_bit = 1 << slot
        for j in iter_bits(self._rows[slot]):
            self._rows[j] &= ~slot_bit
        self._rows[slot] = 0
        self._release(photon)
        self._emit(
            ReductionOp(ReductionOpType.ABSORB_TWIN, emitter=emitter, photon=photon, tag=tag)
        )

    def apply_disconnect(self, emitter_a: int, emitter_b: int, tag: str = "") -> None:
        idx_a, idx_b = self._eidx(emitter_a), self._eidx(emitter_b)
        if not (self._rows[idx_a] >> idx_b) & 1:
            raise ValueError(
                f"emitters {emitter_a} and {emitter_b} are not adjacent; nothing to disconnect"
            )
        self._rows[idx_a] &= ~(1 << idx_b)
        self._rows[idx_b] &= ~(1 << idx_a)
        self._emit(
            ReductionOp(
                ReductionOpType.DISCONNECT, emitter=emitter_a, emitter_b=emitter_b, tag=tag
            )
        )

    def apply_emit_isolated(self, photon: int, emitter: int | None = None, tag: str = "") -> int:
        if photon not in self._slot_of:
            raise ValueError(f"photon {photon} is not in the working graph")
        if self._rows[self._slot_of[photon]]:
            raise ValueError(f"photon {photon} is not isolated")
        if emitter is not None and emitter in self.free_emitters:
            emitter_id = emitter
        elif self.free_emitters:
            emitter_id = min(self.free_emitters)
        else:
            # Allocate a pool slot but keep it free: the emitter is only used
            # as an emission source and never becomes entangled.
            emitter_id = self.acquire_free_emitter()
            self.active_emitters.discard(emitter_id)
            self.free_emitters.add(emitter_id)
        self._release(photon)
        self._emit(
            ReductionOp(
                ReductionOpType.EMIT_ISOLATED, emitter=emitter_id, photon=photon, tag=tag
            )
        )
        return emitter_id

    def apply_free_emitter(self, emitter: int, tag: str = "") -> None:
        if emitter not in self.active_emitters:
            raise ValueError(f"emitter {emitter} is not active")
        if self._rows[self._eidx(emitter)]:
            raise ValueError(f"emitter {emitter} is not isolated and cannot be freed")
        self.active_emitters.discard(emitter)
        self.free_emitters.add(emitter)
        self._emit(ReductionOp(ReductionOpType.FREE_EMITTER, emitter=emitter, tag=tag))

    def free_isolated_emitters(self, tag: str = "") -> list[int]:
        rows = self._rows
        cap = self._cap
        freed = [e for e in sorted(self.active_emitters) if not rows[cap + e]]
        for emitter in freed:
            self.apply_free_emitter(emitter, tag=tag)
        return freed

    # ------------------------------------------------------------------ #
    # Finishing
    # ------------------------------------------------------------------ #

    def disconnect_all_emitter_edges(self, tag: str = "") -> int:
        cap = self._cap
        pairs = [
            (emitter, emitter + 1 + shifted)
            for emitter in sorted(self.active_emitters)
            for shifted in iter_bits(self._rows[cap + emitter] >> (cap + emitter + 1))
        ]
        for a, b in pairs:
            self.apply_disconnect(a, b, tag=tag)
        return len(pairs)

    def finish(self, tag: str = "") -> None:
        """Disconnect leftover emitter edges and free every emitter."""
        if self._slot_of:
            raise RuntimeError(
                "cannot finish the streaming reduction: photons remain in the "
                f"window ({sorted(self._slot_of)[:8]}...)"
            )
        self.disconnect_all_emitter_edges(tag=tag)
        self.free_isolated_emitters(tag=tag)
        if self.active_emitters:  # pragma: no cover - defensive
            raise RuntimeError(f"emitters left active after finish: {self.active_emitters}")


@dataclass
class StreamCompileResult:
    """Summary of one streaming compile (the op list itself is not retained).

    ``operations`` is populated only when :func:`compile_stream` is called
    with ``collect_operations=True`` (the small-size oracle mode); production
    streams leave it ``None`` so memory stays bounded by the window.
    """

    family: str
    num_vertices: int
    num_edges: int
    num_regions: int
    window_capacity: int
    peak_window_photons: int
    num_emitters: int
    emitters_over_budget: int
    num_operations: int
    num_emissions: int
    num_emitter_emitter_gates: int
    op_counts: dict[str, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    operations: list[ReductionOp] | None = None


def _window_capacity(spec) -> int:
    """Pinned hubs plus the largest pair of adjacent regions.

    A streaming scan (one region size remembered at a time): with tiny
    chunks the region count is O(n), and materialising a size list here
    would dominate the traced peak of the whole compile.
    """
    widest = 1
    previous = 0
    for j in range(spec.num_regions):
        size = len(spec.region(j))
        widest = max(widest, previous + size)
        previous = size
    return len(spec.pinned()) + widest


def compile_stream(
    spec,
    strategy: GreedyReductionStrategy | None = None,
    tag: str = "",
    collect_operations: bool = False,
) -> StreamCompileResult:
    """Compile a lazy generator spec region by region with bounded memory.

    Walks ``spec`` (see :mod:`repro.graphs.lazy`) in descending region order,
    reducing each region's photons as soon as its lower neighbour region is
    admitted, and recycling window slots as photons detach.  The emitted
    operation sequence is bit-identical to
    ``greedy_reduce(spec.materialize(), strategy=strategy)`` — same rule
    engine, same processing order — but peak memory is bounded by two regions
    plus the emitter pool instead of the whole graph.

    Args:
        spec: a lazy generator spec (``LatticeStreamSpec`` & co).
        strategy: greedy policy knobs; defaults match :func:`greedy_reduce`.
        tag: tag attached to every generated operation.
        collect_operations: accumulate the full op list on the result (only
            for small-size verification; defeats the memory bound).

    Returns:
        A :class:`StreamCompileResult` with emitter count, op histogram and
        window statistics.
    """
    if strategy is None:
        strategy = GreedyReductionStrategy()
    started = time.perf_counter()

    op_counts: dict[str, int] = {}
    tallies = {"total": 0, "emissions": 0, "ee_gates": 0}
    collected: list[ReductionOp] | None = [] if collect_operations else None

    def sink(op: ReductionOp) -> None:
        op_counts[op.op_type.name] = op_counts.get(op.op_type.name, 0) + 1
        tallies["total"] += 1
        if op.is_emission:
            tallies["emissions"] += 1
        if op.is_emitter_emitter_gate:
            tallies["ee_gates"] += 1
        if collected is not None:
            collected.append(op)

    state = StreamingReductionState(
        _window_capacity(spec),
        emitter_budget=strategy.emitter_budget,
        strict_budget=strategy.strict_budget,
        op_sink=sink,
    )

    def reduce_region(vertices) -> None:
        for vertex in reversed(vertices):
            reduce_photon(state, vertex, strategy, tag)
            if strategy.free_isolated_eagerly:
                state.free_isolated_emitters(tag=tag)

    pinned = tuple(spec.pinned())
    for hub in pinned:
        state.admit_photon(hub)
    num_regions = spec.num_regions
    num_edges = 0
    for j in range(num_regions - 1, -1, -1):
        for vertex in spec.region(j):
            state.admit_photon(vertex)
        for u, v in spec.region_edges(j):
            state.add_edge(u, v)
            num_edges += 1
        if j + 1 < num_regions:
            reduce_region(spec.region(j + 1))
    reduce_region(spec.region(0))
    reduce_region(pinned)
    state.finish(tag=tag)

    return StreamCompileResult(
        family=spec.family,
        num_vertices=spec.num_vertices,
        num_edges=num_edges,
        num_regions=num_regions,
        window_capacity=state.window_capacity,
        peak_window_photons=state.peak_window_photons,
        num_emitters=max(state.num_emitters_allocated, 1),
        emitters_over_budget=state.emitters_over_budget,
        num_operations=tallies["total"],
        num_emissions=tallies["emissions"],
        num_emitter_emitter_gates=tallies["ee_gates"],
        op_counts=dict(sorted(op_counts.items())),
        elapsed_seconds=time.perf_counter() - started,
        operations=collected,
    )
