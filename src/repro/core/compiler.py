"""The top-level divide-and-conquer compiler (:class:`EmitterCompiler`).

Pipeline for one target graph state ``|G>``:

1. **Partition + LC** (:mod:`repro.core.partition`) — find a local-Clifford
   equivalent graph ``G'`` and a partition of its vertices into blocks of at
   most ``g_max`` vertices with few stem edges.
2. **Subgraph compilation** (:mod:`repro.core.subgraph_compiler`) — for every
   block, search photon orderings under the flexible emitter constraint.
3. **Scheduling** (:mod:`repro.core.scheduler`) — order the blocks by the
   priority ``P_c = n_p / T_c``, pack them onto at most ``N_e^limit``
   emitters (Tetris) and pick the flexible-constraint variant that maximises
   utilisation.
4. **Global reduction** — replay the per-block processing orders on the full
   graph ``G'`` through the exact reduction engine, with emitter affinity
   taken from the packing.  Stem edges are automatically compiled into
   emitter-emitter gates at this stage.
5. **LC correction + ALAP scheduling** — append the single-qubit gates that
   map ``|G'>`` back to ``|G>``, schedule the gates as late as possible with
   the hardware durations, and (optionally) verify the circuit end to end on
   the stabilizer simulator.

The result object carries the full provenance (partition, per-block results,
schedule plan, metrics) so the evaluation harness and the examples can report
every quantity of the paper without recomputing anything.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Hashable

from repro.circuit.circuit import Circuit
from repro.circuit.gates import Gate, GateName, photon as photon_qubit
from repro.circuit.metrics import CircuitMetrics, compute_metrics
from repro.circuit.timing import Schedule, schedule_circuit
from repro.circuit.validation import verify_circuit_generates
from repro.core.config import CompilerConfig
from repro.core.ordering import OrderingResult, optimize_emission_ordering
from repro.core.packed_reduction import make_reduction_state
from repro.core.partition import GraphPartitioner, PartitionResult
from repro.core.plan_scoring import score_sequence
from repro.core.reduction import ReductionSequence
from repro.core.scheduler import SchedulePlan, SubgraphScheduler
from repro.core.strategies import GreedyReductionStrategy, reduce_photon
from repro.core.subgraph_compiler import SubgraphCompilationResult, SubgraphCompiler
from repro.graphs.entanglement import minimum_emitters
from repro.graphs.graph_state import GraphState
from repro.graphs.local_complementation import lc_correction_gates
from repro.utils.backend import use_backend

__all__ = ["CompilationResult", "EmitterCompiler", "compile_graph"]

Vertex = Hashable


@dataclass
class CompilationResult:
    """Everything the framework produces for one target graph."""

    circuit: Circuit
    sequence: ReductionSequence
    schedule: Schedule
    metrics: CircuitMetrics
    partition: PartitionResult
    subgraph_results: list[dict[int, SubgraphCompilationResult]]
    schedule_plan: SchedulePlan | None
    minimum_emitters: int
    emitter_limit: int
    compile_time_seconds: float
    verified: bool | None = None
    ordering_strategy: str = "natural"
    ordering_peak: int | None = None
    #: Subgraph-compile-cache counter delta observed over this compilation
    #: (``None`` when the cache is disabled).  The counters belong to the
    #: shared process-wide cache, so with *concurrent* compilations in one
    #: process the delta includes the other threads' lookups — treat it as
    #: best-effort observability, not an exact per-compile ledger.
    #: Deliberately kept out of :meth:`summary`: hit counts depend on
    #: process state (warm vs cold cache), and summaries must stay a
    #: deterministic function of the job for content-hash result caching to
    #: be sound.
    subgraph_cache_stats: dict[str, float] | None = None

    @property
    def num_emitter_emitter_cnots(self) -> int:
        return self.metrics.num_emitter_emitter_cnots

    @property
    def duration(self) -> float:
        return self.metrics.duration

    @property
    def average_photon_loss_duration(self) -> float:
        return self.metrics.average_photon_loss_duration

    @property
    def photon_loss_probability(self) -> float | None:
        return self.metrics.photon_loss_probability

    @property
    def num_stem_edges(self) -> int:
        return self.partition.num_stem_edges

    def summary(self) -> dict[str, float]:
        """Flat dictionary used by the evaluation harness and the CLI."""
        data = self.metrics.as_dict()
        data.update(
            {
                "num_stem_edges": self.num_stem_edges,
                "num_blocks": self.partition.num_blocks,
                "num_lc_operations": len(self.partition.lc_operations),
                "minimum_emitters": self.minimum_emitters,
                "emitter_limit": self.emitter_limit,
                "compile_time_seconds": self.compile_time_seconds,
                "ordering_strategy": self.ordering_strategy,
            }
        )
        if self.ordering_peak is not None:
            data["ordering_peak"] = self.ordering_peak
        return data


class EmitterCompiler:
    """The paper's scalable compilation framework."""

    def __init__(self, config: CompilerConfig | None = None):
        self.config = config if config is not None else CompilerConfig()
        self._partitioner = GraphPartitioner(self.config)
        self._subgraph_compiler = SubgraphCompiler(self.config)

    # ------------------------------------------------------------------ #

    def compile(self, target_graph: GraphState) -> CompilationResult:
        """Compile ``target_graph`` into a verified generation circuit.

        When ``config.gf2_backend`` is set, every GF(2)/tableau kernel of the
        compilation (cut ranks, partitioning, verification) runs on that
        backend; otherwise the process default applies.
        """
        with use_backend(self.config.gf2_backend):
            return self._compile(target_graph)

    def _compile(self, target_graph: GraphState) -> CompilationResult:
        if target_graph.num_vertices == 0:
            raise ValueError("cannot compile an empty graph state")
        config = self.config
        started = time.perf_counter()

        # 1. Partition + LC.
        partition = self._partitioner.partition(target_graph)
        working_graph = partition.transformed_graph

        # 2. Emitter budget.  With an ordering strategy enabled the optimiser
        # searches for an emission ordering with a lower peak height; the
        # bound it certifies (never above the natural one) sizes the pool.
        n_e_min = minimum_emitters(working_graph)
        ordering_search: OrderingResult | None = None
        if config.ordering_strategy != "natural":
            ordering_search = optimize_emission_ordering(
                working_graph,
                strategy=config.ordering_strategy,
                seed=config.seed,
                iterations=config.ordering_iterations,
            )
            n_e_min = min(n_e_min, max(ordering_search.peak_height, 1))
        if config.emitter_limit is not None:
            emitter_limit = config.emitter_limit
        else:
            emitter_limit = max(1, int(-(-config.emitter_limit_factor * n_e_min // 1)))
        emitter_limit = max(emitter_limit, 1)

        # 3. Per-subgraph compilation under the flexible constraint.
        cache = self._subgraph_compiler.cache
        cache_before = cache.stats.snapshot() if cache is not None else None
        subgraph_results: list[dict[int, SubgraphCompilationResult]] = []
        for block in partition.blocks:
            subgraph = working_graph.induced_subgraph(block)
            subgraph_results.append(self._subgraph_compiler.compile_flexible(subgraph))
        subgraph_cache_stats = (
            cache.stats.delta(cache_before) if cache is not None else None
        )

        # 4. Recombination plan.
        schedule_plan: SchedulePlan | None = None
        if len(partition.blocks) > 1:
            scheduler = SubgraphScheduler(emitter_limit)
            schedule_plan = scheduler.schedule(subgraph_results)
            candidate_plans = self._candidate_processing_plans(schedule_plan, working_graph)
        else:
            only = subgraph_results[0][min(subgraph_results[0])]
            candidate_plans = [[(only.processing_order, ())]]
        if ordering_search is not None:
            # The optimised emission ordering, replayed as a whole-graph
            # processing plan (processing order is reversed emission time).
            candidate_plans.append(
                [(list(reversed(ordering_search.ordering)), ())]
            )

        # 5. Global reduction with emitter affinity; among the candidate block
        # orderings produced by the scheduler, keep the one with the fewest
        # emitter-emitter CNOTs (ties broken by photon-loss duration and
        # overall duration — the paper's hardware-aware objective).
        sequence, circuit = self._best_global_reduction(
            working_graph, candidate_plans, emitter_limit
        )

        # 6. LC correction gates (map |G'> back to |G>).
        circuit = self._append_lc_corrections(circuit, partition, sequence)

        # 7. Gate-level scheduling, metrics, optional verification.
        schedule = schedule_circuit(
            circuit,
            durations=config.hardware.durations,
            policy=config.scheduling_policy,
        )
        metrics = compute_metrics(
            circuit,
            schedule=schedule,
            loss_model=config.hardware.loss_model(),
        )
        verified = None
        if config.verify:
            verified = verify_circuit_generates(
                circuit,
                target_graph,
                photon_of_vertex=sequence.photon_of_vertex,
            )
            if not verified:
                raise RuntimeError(
                    "compilation failed verification — this indicates a bug in the "
                    "reduction engine or the LC correction stage"
                )

        elapsed = time.perf_counter() - started
        return CompilationResult(
            circuit=circuit,
            sequence=sequence,
            schedule=schedule,
            metrics=metrics,
            partition=partition,
            subgraph_results=subgraph_results,
            schedule_plan=schedule_plan,
            minimum_emitters=n_e_min,
            emitter_limit=emitter_limit,
            compile_time_seconds=elapsed,
            verified=verified,
            ordering_strategy=config.ordering_strategy,
            ordering_peak=(
                ordering_search.peak_height if ordering_search is not None else None
            ),
            subgraph_cache_stats=subgraph_cache_stats,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _candidate_processing_plans(
        self, schedule_plan: SchedulePlan, working_graph: GraphState
    ) -> list[list[tuple[list[Vertex], tuple[int, ...]]]]:
        """Block-ordering candidates explored by the recombination stage.

        The primary candidate follows the Tetris plan (latest block first in
        reversed time).  The alternatives — the mirrored order, a round-robin
        interleaving of the blocks, and two monolithic whole-graph orders
        (reverse-natural and low-degree-first) — cover graphs where the stem
        structure is so dense that the block decomposition itself is not the
        best recombination; the compiler picks the winner by actual
        emitter-emitter CNOT count and photon-loss duration.
        """
        ordered = [
            (item.result.processing_order, tuple(item.emitter_ids))
            for item in schedule_plan.reversed_processing_plan()
        ]
        candidates = [ordered, list(reversed(ordered))]

        # Round-robin interleaving: one photon from each block in turn.  The
        # emitter affinity of each photon is kept from its own block.
        queues = [deque(order) for order, _ in ordered]
        affinities = [affinity for _, affinity in ordered]
        interleaved: list[tuple[list[Vertex], tuple[int, ...]]] = []
        while any(queues):
            for queue, affinity in zip(queues, affinities):
                if queue:
                    interleaved.append(([queue.popleft()], affinity))
        candidates.append(interleaved)

        # Monolithic fall-backs over the whole (LC-transformed) graph.
        vertices = working_graph.vertices()
        degree = {v: working_graph.degree(v) for v in vertices}
        candidates.append([(list(reversed(vertices)), ())])
        candidates.append(
            [(sorted(vertices, key=lambda v: (degree[v], repr(v))), ())]
        )
        return candidates

    def _best_global_reduction(
        self,
        working_graph: GraphState,
        candidate_plans: list[list[tuple[list[Vertex], tuple[int, ...]]]],
        emitter_limit: int,
    ) -> tuple[ReductionSequence, Circuit]:
        """Run the global reduction for every candidate plan and keep the best.

        Candidates are ranked straight from their op sequences
        (:func:`repro.core.plan_scoring.score_sequence` — bit-identical to
        the historical circuit-backed metrics); only the winning plan is
        materialised into a :class:`Circuit`.
        """
        config = self.config
        best: tuple[tuple[float, float, float], ReductionSequence] | None = None
        for plan in candidate_plans:
            sequence = self._global_reduction(working_graph, plan, emitter_limit)
            key = score_sequence(
                sequence,
                durations=config.hardware.durations,
                policy=config.scheduling_policy,
                cnot_cutoff=best[0][0] if best is not None else None,
            )
            if key is not None and (best is None or key < best[0]):
                best = (key, sequence)
        assert best is not None
        return best[1], best[1].to_circuit()

    def _global_reduction(
        self,
        working_graph: GraphState,
        processing_plan: list[tuple[list[Vertex], tuple[int, ...]]],
        emitter_limit: int,
    ) -> ReductionSequence:
        """Reduce the full graph following the per-block processing orders.

        Runs on the backend-selected working-graph representation (the packed
        bitset fast path by default; the dict-based oracle on ``dense``).
        """
        config = self.config
        state = make_reduction_state(working_graph, emitter_budget=emitter_limit)
        for block_number, (order, preferred) in enumerate(processing_plan):
            strategy = GreedyReductionStrategy(
                emitter_budget=emitter_limit,
                enable_twin_rule=config.use_twin_rule,
                preferred_emitters=preferred,
            )
            tag = f"block:{block_number}"
            for vertex in order:
                photon = state.photon_of_vertex[vertex]
                if not state.photon_in_graph(photon):  # pragma: no cover - defensive
                    continue
                reduce_photon(state, photon, strategy, tag=tag)
                state.free_isolated_emitters(tag=tag)
        return state.finish(tag="stem")

    def _append_lc_corrections(
        self,
        circuit: Circuit,
        partition: PartitionResult,
        sequence: ReductionSequence,
    ) -> Circuit:
        """Append single-qubit gates mapping the LC-equivalent state back to the target."""
        if not partition.lc_operations:
            return circuit
        corrected = circuit.copy()
        gates = lc_correction_gates(partition.lc_operations, inverse=True)
        for name, vertex in gates:
            photon_index = sequence.photon_of_vertex[vertex]
            corrected.append(
                Gate(
                    name=GateName[name],
                    qubits=(photon_qubit(photon_index),),
                    tag="lc",
                )
            )
        return corrected


def compile_graph(
    target_graph: GraphState,
    config: CompilerConfig | None = None,
    **overrides,
) -> CompilationResult:
    """Compile a graph state with the paper's framework in one call.

    The functional entry point for scripts and notebooks: it builds an
    :class:`EmitterCompiler` from ``config`` (or the defaults) with any
    keyword overrides applied and compiles ``target_graph``.

    Parameters
    ----------
    target_graph : GraphState
        The photonic graph state to generate.
    config : CompilerConfig | None, optional
        Base configuration; ``None`` uses the paper's defaults.
    **overrides
        Any :class:`repro.core.config.CompilerConfig` field, applied on top
        of ``config`` (e.g. ``verify=True``, ``gf2_backend="dense"``,
        ``emitter_limit_factor=2.0``).

    Returns
    -------
    CompilationResult
        Circuit, schedule, metrics and partition of the compilation.

    Examples
    --------
    >>> from repro import compile_graph, lattice_graph
    >>> result = compile_graph(lattice_graph(3, 4), verify=True)
    >>> result.verified
    True
    """
    if config is None:
        config = CompilerConfig()
    if overrides:
        config = config.with_overrides(**overrides)
    return EmitterCompiler(config).compile(target_graph)
