"""Time-reversed graph reduction: the exact rewrite engine.

The emitter compiler works in the *time-reversed* picture (paper §II.C):
starting from the target graph state (all vertices are photons), it applies
reversed operations until nothing is left, then plays the sequence backwards
to obtain the forward generation circuit.  Each reversed operation used here
is an exact graph-state rewrite whose forward gate realisation is derived in
closed form (and re-verified against the stabilizer simulator in the test
suite):

=====================  =============================================  ==========================================
reversed operation      precondition (reversed time)                   forward gates (generation circuit)
=====================  =============================================  ==========================================
``SWAP``                photon ``p`` in graph, emitter ``e`` free      ``EMIT(e,p)  H(e)  MEASURE_Z(e)``
                                                                       (conditional ``Z(p)`` on outcome 1);
                                                                       photon takes over the emitter's
                                                                       neighbourhood, emitter is freed
``ABSORB_LEAF``         photon ``p`` dangling on emitter ``e``         ``EMIT(e,p)  H(p)`` — photon emitted as a
                                                                       leaf attached to the emitter
``ABSORB_DANGLING``     emitter ``e`` dangling on photon ``p``         ``EMIT(e,p)  H(e)`` — photon takes over the
                                                                       emitter's neighbourhood, emitter stays as
                                                                       a leaf on the photon
``ABSORB_TWIN``         emitter ``e`` and photon ``p`` are twins       ``H(e)  EMIT(e,p)  H(p)  H(e)`` — photon is
                        (same neighbourhood, not adjacent)             emitted as a twin of the emitter
``DISCONNECT``          edge between two active emitters               ``CZ(e1,e2)`` — the costly operation
``EMIT_ISOLATED``       isolated photon ``p``; some emitter free       ``EMIT(e,p)  H(p)`` from a free emitter
``FREE_EMITTER``        emitter isolated in the graph                  ``H(e)`` — emitter leaves/enters ``|+>``
=====================  =============================================  ==========================================

The engine maintains the invariant that, at every intermediate point, the
quantum state of the forward circuit is exactly the graph state of the current
working graph (active emitters ∪ already-emitted photons) tensored with
``|0>`` on all free emitters.  The invariant is what makes the final circuit
correct by construction; :func:`repro.circuit.validation.verify_circuit_generates`
double-checks it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.circuit.circuit import Circuit
from repro.circuit.gates import GateName, photon as photon_qubit
from repro.graphs.graph_state import GraphState

__all__ = [
    "ReductionOpType",
    "ReductionOp",
    "ReductionSequence",
    "ReductionState",
    "InsufficientEmittersError",
    "forward_circuit_from_sequence",
]

Vertex = Hashable


class InsufficientEmittersError(RuntimeError):
    """Raised when a strict emitter budget cannot accommodate the reduction."""


class ReductionOpType(str, enum.Enum):
    """The reversed-operation vocabulary (see the module docstring table)."""

    SWAP = "swap"
    ABSORB_LEAF = "absorb_leaf"
    ABSORB_DANGLING = "absorb_dangling"
    ABSORB_TWIN = "absorb_twin"
    DISCONNECT = "disconnect"
    EMIT_ISOLATED = "emit_isolated"
    FREE_EMITTER = "free_emitter"


@dataclass(frozen=True)
class ReductionOp:
    """One reversed operation.

    ``emitter`` / ``emitter_b`` are emitter ids (integers local to the
    reduction), ``photon`` is the photon index of the removed/affected photon,
    and ``tag`` lets callers attribute the operation to a pipeline stage.
    """

    op_type: ReductionOpType
    emitter: int | None = None
    emitter_b: int | None = None
    photon: int | None = None
    tag: str = ""

    def __repr__(self) -> str:
        parts = [self.op_type.value]
        if self.emitter is not None:
            parts.append(f"e{self.emitter}")
        if self.emitter_b is not None:
            parts.append(f"e{self.emitter_b}")
        if self.photon is not None:
            parts.append(f"p{self.photon}")
        body = ",".join(parts[1:])
        return f"{parts[0]}({body})"

    @property
    def is_emitter_emitter_gate(self) -> bool:
        """True when the forward realisation is an emitter-emitter two-qubit gate."""
        return self.op_type is ReductionOpType.DISCONNECT

    @property
    def is_emission(self) -> bool:
        """True when the forward realisation emits a photon."""
        return self.op_type in (
            ReductionOpType.SWAP,
            ReductionOpType.ABSORB_LEAF,
            ReductionOpType.ABSORB_DANGLING,
            ReductionOpType.ABSORB_TWIN,
            ReductionOpType.EMIT_ISOLATED,
        )


@dataclass
class ReductionSequence:
    """The outcome of a complete reduction.

    Attributes:
        operations: reversed operations in the order they were applied
            (reversed time).  The forward circuit applies them back to front.
        num_photons: number of photons of the target graph.
        num_emitters: number of emitter ids used.
        photon_of_vertex: map from target-graph vertex label to photon index.
        emitters_over_budget: how many emitters were allocated beyond the
            soft budget (0 when the budget sufficed).
    """

    operations: list[ReductionOp]
    num_photons: int
    num_emitters: int
    photon_of_vertex: dict[Vertex, int]
    emitters_over_budget: int = 0

    @property
    def num_emitter_emitter_gates(self) -> int:
        """Number of emitter-emitter CNOT/CZ gates in the forward circuit."""
        return sum(1 for op in self.operations if op.is_emitter_emitter_gate)

    @property
    def num_emissions(self) -> int:
        return sum(1 for op in self.operations if op.is_emission)

    def emission_order(self) -> list[int]:
        """Photon indices in forward emission order (first emitted first)."""
        reversed_removals = [
            op.photon for op in self.operations if op.is_emission and op.photon is not None
        ]
        return list(reversed(reversed_removals))

    def to_circuit(self, tag_prefix: str = "") -> Circuit:
        """Build the forward generation circuit (see module docstring table)."""
        return forward_circuit_from_sequence(self, tag_prefix=tag_prefix)


class ReductionState:
    """Mutable state of a time-reversed reduction.

    The working graph contains two vertex species encoded as tuples:
    ``("p", photon_index)`` and ``("e", emitter_id)``.  Photon indices are the
    positions of the target vertices in the order given at construction time;
    emitter ids are allocated on demand, bounded by a *soft* budget (the
    reduction records by how much the budget was exceeded rather than failing,
    unless ``strict_budget`` is set).
    """

    def __init__(
        self,
        target_graph: GraphState,
        emitter_budget: int | None = None,
        strict_budget: bool = False,
        photon_order: Sequence[Vertex] | None = None,
    ):
        if target_graph.num_vertices == 0:
            raise ValueError("cannot reduce an empty target graph")
        vertices = list(photon_order) if photon_order is not None else target_graph.vertices()
        if (
            set(vertices) != set(target_graph.vertices())
            or len(vertices) != target_graph.num_vertices
        ):
            raise ValueError("photon_order must be a permutation of the target vertices")
        self.photon_of_vertex: dict[Vertex, int] = {v: i for i, v in enumerate(vertices)}
        self.num_photons = len(vertices)
        self.emitter_budget = emitter_budget
        self.strict_budget = bool(strict_budget)
        self.emitters_over_budget = 0

        self.graph = GraphState()
        for v in vertices:
            self.graph.add_vertex(("p", self.photon_of_vertex[v]))
        for u, v in target_graph.edges():
            self.graph.add_edge(
                ("p", self.photon_of_vertex[u]), ("p", self.photon_of_vertex[v])
            )

        self.free_emitters: set[int] = set()
        self.active_emitters: set[int] = set()
        self.num_emitters_allocated = 0
        self.operations: list[ReductionOp] = []

    # ------------------------------------------------------------------ #
    # Vertex helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def _pnode(index: int) -> tuple[str, int]:
        return ("p", index)

    @staticmethod
    def _enode(index: int) -> tuple[str, int]:
        return ("e", index)

    def remaining_photons(self) -> list[int]:
        """Photon indices still present in the working graph."""
        return sorted(i for kind, i in self.graph.vertices() if kind == "p")

    def photon_in_graph(self, photon: int) -> bool:
        return self.graph.has_vertex(self._pnode(photon))

    def photon_neighbors(self, photon: int) -> tuple[set[int], set[int]]:
        """Neighbours of a photon, split into (photon indices, emitter ids)."""
        photons: set[int] = set()
        emitters: set[int] = set()
        for kind, idx in self.graph.neighbors(self._pnode(photon)):
            if kind == "p":
                photons.add(idx)
            else:
                emitters.add(idx)
        return photons, emitters

    def emitter_neighbors(self, emitter: int) -> tuple[set[int], set[int]]:
        """Neighbours of an emitter, split into (photon indices, emitter ids)."""
        photons: set[int] = set()
        emitters: set[int] = set()
        for kind, idx in self.graph.neighbors(self._enode(emitter)):
            if kind == "p":
                photons.add(idx)
            else:
                emitters.add(idx)
        return photons, emitters

    def emitter_degree(self, emitter: int) -> int:
        return self.graph.degree(self._enode(emitter))

    def photon_degree(self, photon: int) -> int:
        return self.graph.degree(self._pnode(photon))

    def is_done(self) -> bool:
        """True when every photon has been removed and every emitter is free."""
        return not self.remaining_photons() and not self.active_emitters

    # ------------------------------------------------------------------ #
    # Rule queries (shared with the packed fast path)
    #
    # The greedy strategy (:mod:`repro.core.strategies`) drives photon
    # removal exclusively through these queries, so any state implementation
    # that answers them identically produces bit-identical op sequences.
    # :class:`repro.core.packed_reduction.PackedReductionState` implements the
    # same queries on word-packed adjacency rows.
    # ------------------------------------------------------------------ #

    def photon_neighbor_counts(self, photon: int) -> tuple[int, int]:
        """``(#photon neighbours, #emitter neighbours)`` of a photon."""
        photons, emitters = self.photon_neighbors(photon)
        return len(photons), len(emitters)

    def find_dangling_emitter(self, photon: int) -> int | None:
        """Smallest emitter adjacent to ``photon`` whose only neighbour is it."""
        _, emitters = self.photon_neighbors(photon)
        candidates = [e for e in emitters if self.emitter_degree(e) == 1]
        return min(candidates) if candidates else None

    def find_leaf_host(self, photon: int) -> int | None:
        """The emitter hosting ``photon`` when the photon has degree 1."""
        if self.photon_degree(photon) != 1:
            return None
        _, emitters = self.photon_neighbors(photon)
        return min(emitters) if emitters else None

    def find_twin_emitter(self, photon: int) -> int | None:
        """First active emitter (ascending id) that is a non-adjacent twin."""
        pnode = self._pnode(photon)
        photon_neighbourhood = self.graph.neighbors(pnode)
        for emitter in sorted(self.active_emitters):
            enode = self._enode(emitter)
            if self.graph.has_edge(pnode, enode):
                continue
            if self.graph.neighbors(enode) == photon_neighbourhood:
                return emitter
        return None

    def disconnect_absorb_candidate(self, photon: int) -> tuple[int, int] | None:
        """Best ``(cost, emitter)`` for the disconnect-absorb move, or ``None``.

        The move requires an emitter adjacent to ``photon`` whose *other*
        neighbours are all emitters (emitter-photon edges cannot be cut); the
        immediate cost is the number of those neighbours.  Scanning ascending
        emitter ids with a strict improvement keeps the choice deterministic.
        """
        _, emitters = self.photon_neighbors(photon)
        best: tuple[int, int] | None = None
        for e in sorted(emitters):
            other_photons, other_emitters = self.emitter_neighbors(e)
            other_photons = other_photons - {photon}
            if other_photons:
                continue
            cost = len(other_emitters)
            if best is None or cost < best[0]:
                best = (cost, e)
        return best

    def liberation_candidate(self) -> tuple[int, int] | None:
        """Best ``(cost, emitter)`` freeable by disconnecting it, or ``None``."""
        best: tuple[int, int] | None = None
        for emitter in sorted(self.active_emitters):
            photons, emitters = self.emitter_neighbors(emitter)
            if photons:
                continue
            cost = len(emitters)
            if best is None or cost < best[0]:
                best = (cost, emitter)
        return best

    # ------------------------------------------------------------------ #
    # Emitter pool management
    # ------------------------------------------------------------------ #

    def acquire_free_emitter(self, preferred: int | None = None) -> int:
        """Return a free emitter id, allocating a new one if needed.

        ``preferred`` is honoured when that emitter is currently free.  When
        the soft budget is exceeded the overflow is recorded; with
        ``strict_budget`` an :class:`InsufficientEmittersError` is raised
        instead.
        """
        if preferred is not None and preferred in self.free_emitters:
            self.free_emitters.discard(preferred)
            self.active_emitters.add(preferred)
            return preferred
        if self.free_emitters:
            chosen = min(self.free_emitters)
            self.free_emitters.discard(chosen)
            self.active_emitters.add(chosen)
            return chosen
        if (
            self.emitter_budget is not None
            and self.num_emitters_allocated >= self.emitter_budget
        ):
            if self.strict_budget:
                raise InsufficientEmittersError(
                    f"emitter budget of {self.emitter_budget} exhausted"
                )
            self.emitters_over_budget += 1
        new_id = self.num_emitters_allocated
        self.num_emitters_allocated += 1
        self.active_emitters.add(new_id)
        return new_id

    def _activate(self, emitter: int) -> None:
        self.free_emitters.discard(emitter)
        self.active_emitters.add(emitter)
        if not self.graph.has_vertex(self._enode(emitter)):
            self.graph.add_vertex(self._enode(emitter))

    def _release(self, emitter: int) -> None:
        if self.graph.has_vertex(self._enode(emitter)):
            self.graph.remove_vertex(self._enode(emitter))
        self.active_emitters.discard(emitter)
        self.free_emitters.add(emitter)

    # ------------------------------------------------------------------ #
    # Reversed operations
    # ------------------------------------------------------------------ #

    def apply_swap(self, photon: int, emitter: int | None = None, tag: str = "") -> int:
        """Replace ``photon`` by a free emitter (reversed emission + measurement).

        Returns the emitter id used.
        """
        if not self.photon_in_graph(photon):
            raise ValueError(f"photon {photon} is not in the working graph")
        emitter_id = self.acquire_free_emitter(preferred=emitter)
        pnode = self._pnode(photon)
        neighbours = list(self.graph.neighbors(pnode))
        enode = self._enode(emitter_id)
        if not self.graph.has_vertex(enode):
            self.graph.add_vertex(enode)
        for neighbour in neighbours:
            self.graph.add_edge(enode, neighbour)
        self.graph.remove_vertex(pnode)
        self.operations.append(
            ReductionOp(ReductionOpType.SWAP, emitter=emitter_id, photon=photon, tag=tag)
        )
        return emitter_id

    def apply_absorb_leaf(self, emitter: int, photon: int, tag: str = "") -> None:
        """Absorb a photon that dangles on ``emitter`` (degree-1 photon)."""
        pnode = self._pnode(photon)
        enode = self._enode(emitter)
        if not self.photon_in_graph(photon):
            raise ValueError(f"photon {photon} is not in the working graph")
        if self.photon_degree(photon) != 1 or not self.graph.has_edge(pnode, enode):
            raise ValueError(
                f"photon {photon} is not dangling on emitter {emitter}; "
                "ABSORB_LEAF precondition violated"
            )
        self.graph.remove_vertex(pnode)
        self.operations.append(
            ReductionOp(ReductionOpType.ABSORB_LEAF, emitter=emitter, photon=photon, tag=tag)
        )

    def apply_absorb_dangling(self, emitter: int, photon: int, tag: str = "") -> None:
        """Absorb ``photon`` into a dangling emitter that is attached to it.

        The emitter inherits the photon's remaining neighbourhood.
        """
        pnode = self._pnode(photon)
        enode = self._enode(emitter)
        if not self.photon_in_graph(photon):
            raise ValueError(f"photon {photon} is not in the working graph")
        if self.emitter_degree(emitter) != 1 or not self.graph.has_edge(pnode, enode):
            raise ValueError(
                f"emitter {emitter} is not dangling on photon {photon}; "
                "ABSORB_DANGLING precondition violated"
            )
        inherited = [n for n in self.graph.neighbors(pnode) if n != enode]
        self.graph.remove_vertex(pnode)
        for neighbour in inherited:
            self.graph.add_edge(enode, neighbour)
        self.operations.append(
            ReductionOp(
                ReductionOpType.ABSORB_DANGLING, emitter=emitter, photon=photon, tag=tag
            )
        )

    def apply_absorb_twin(self, emitter: int, photon: int, tag: str = "") -> None:
        """Absorb ``photon`` when it has exactly the emitter's neighbourhood.

        Precondition: ``N(photon) == N(emitter)`` and the two are not adjacent.
        """
        pnode = self._pnode(photon)
        enode = self._enode(emitter)
        if not self.photon_in_graph(photon):
            raise ValueError(f"photon {photon} is not in the working graph")
        if self.graph.has_edge(pnode, enode):
            raise ValueError(
                f"photon {photon} and emitter {emitter} are adjacent; "
                "ABSORB_TWIN requires non-adjacent twins"
            )
        if self.graph.neighbors(pnode) != self.graph.neighbors(enode):
            raise ValueError(
                f"photon {photon} and emitter {emitter} are not twins; "
                "ABSORB_TWIN precondition violated"
            )
        self.graph.remove_vertex(pnode)
        self.operations.append(
            ReductionOp(ReductionOpType.ABSORB_TWIN, emitter=emitter, photon=photon, tag=tag)
        )

    def apply_disconnect(self, emitter_a: int, emitter_b: int, tag: str = "") -> None:
        """Remove an emitter-emitter edge (forward: one CZ gate)."""
        node_a = self._enode(emitter_a)
        node_b = self._enode(emitter_b)
        if not self.graph.has_edge(node_a, node_b):
            raise ValueError(
                f"emitters {emitter_a} and {emitter_b} are not adjacent; nothing to disconnect"
            )
        self.graph.remove_edge(node_a, node_b)
        self.operations.append(
            ReductionOp(
                ReductionOpType.DISCONNECT, emitter=emitter_a, emitter_b=emitter_b, tag=tag
            )
        )

    def apply_emit_isolated(self, photon: int, emitter: int | None = None, tag: str = "") -> int:
        """Remove an isolated photon (forward: emit an unentangled ``|+>`` photon).

        A free emitter is required (the emission CNOT must come from a
        disentangled emitter); it stays free.  Returns the emitter id used.
        """
        if not self.photon_in_graph(photon):
            raise ValueError(f"photon {photon} is not in the working graph")
        if self.photon_degree(photon) != 0:
            raise ValueError(f"photon {photon} is not isolated")
        if emitter is not None and emitter in self.free_emitters:
            emitter_id = emitter
        elif self.free_emitters:
            emitter_id = min(self.free_emitters)
        else:
            # Allocate a pool slot but keep it free: the emitter is only used
            # as an emission source and never becomes entangled.
            emitter_id = self.acquire_free_emitter()
            self.active_emitters.discard(emitter_id)
            self.free_emitters.add(emitter_id)
        self.graph.remove_vertex(self._pnode(photon))
        self.operations.append(
            ReductionOp(
                ReductionOpType.EMIT_ISOLATED, emitter=emitter_id, photon=photon, tag=tag
            )
        )
        return emitter_id

    def apply_free_emitter(self, emitter: int, tag: str = "") -> None:
        """Release an isolated active emitter back into the free pool."""
        enode = self._enode(emitter)
        if emitter not in self.active_emitters:
            raise ValueError(f"emitter {emitter} is not active")
        if self.graph.degree(enode) != 0:
            raise ValueError(f"emitter {emitter} is not isolated and cannot be freed")
        self._release(emitter)
        self.operations.append(
            ReductionOp(ReductionOpType.FREE_EMITTER, emitter=emitter, tag=tag)
        )

    def free_isolated_emitters(self, tag: str = "") -> list[int]:
        """Free every active emitter that has become isolated; return their ids."""
        freed = []
        for emitter in sorted(self.active_emitters):
            if self.graph.degree(self._enode(emitter)) == 0:
                self.apply_free_emitter(emitter, tag=tag)
                freed.append(emitter)
        return freed

    # ------------------------------------------------------------------ #
    # Finishing
    # ------------------------------------------------------------------ #

    def disconnect_all_emitter_edges(self, tag: str = "") -> int:
        """Remove every remaining emitter-emitter edge; return how many.

        The edges are collected once and applied in one deterministic
        (sorted) pass — disconnects never create emitter-emitter edges, so a
        single scan suffices (the historical implementation rescanned every
        edge after each disconnect, which was quadratic in the edge count).
        """
        pairs = sorted(
            (u[1], v[1]) if u[1] <= v[1] else (v[1], u[1])
            for u, v in self.graph.edges()
            if u[0] == "e" and v[0] == "e"
        )
        for a, b in pairs:
            self.apply_disconnect(a, b, tag=tag)
        return len(pairs)

    def finish(self, tag: str = "") -> ReductionSequence:
        """Disconnect leftover emitter edges, free emitters and return the sequence.

        Raises:
            RuntimeError: if photons remain in the working graph.
        """
        if self.remaining_photons():
            raise RuntimeError(
                "cannot finish the reduction: photons remain in the working graph "
                f"({self.remaining_photons()})"
            )
        self.disconnect_all_emitter_edges(tag=tag)
        self.free_isolated_emitters(tag=tag)
        if self.active_emitters:  # pragma: no cover - defensive
            raise RuntimeError(f"emitters left active after finish: {self.active_emitters}")
        return ReductionSequence(
            operations=list(self.operations),
            num_photons=self.num_photons,
            num_emitters=max(self.num_emitters_allocated, 1),
            photon_of_vertex=dict(self.photon_of_vertex),
            emitters_over_budget=self.emitters_over_budget,
        )


def forward_circuit_from_sequence(
    sequence: ReductionSequence, tag_prefix: str = ""
) -> Circuit:
    """Reverse a reduction sequence into the forward generation circuit."""
    circuit = Circuit(num_emitters=sequence.num_emitters, num_photons=sequence.num_photons)
    for op in reversed(sequence.operations):
        tag = f"{tag_prefix}{op.tag}" if tag_prefix or op.tag else ""
        if op.op_type is ReductionOpType.SWAP:
            assert op.emitter is not None and op.photon is not None
            circuit.add_emission(op.emitter, op.photon, tag=tag)
            circuit.add_single(GateName.H, circuit_emitter(op.emitter), tag=tag)
            circuit.add_measure(
                op.emitter,
                conditional_paulis=[("Z", photon_qubit(op.photon))],
                tag=tag,
            )
        elif op.op_type is ReductionOpType.ABSORB_LEAF:
            assert op.emitter is not None and op.photon is not None
            circuit.add_emission(op.emitter, op.photon, tag=tag)
            circuit.add_single(GateName.H, photon_qubit(op.photon), tag=tag)
        elif op.op_type is ReductionOpType.ABSORB_DANGLING:
            assert op.emitter is not None and op.photon is not None
            circuit.add_emission(op.emitter, op.photon, tag=tag)
            circuit.add_single(GateName.H, circuit_emitter(op.emitter), tag=tag)
        elif op.op_type is ReductionOpType.ABSORB_TWIN:
            assert op.emitter is not None and op.photon is not None
            circuit.add_single(GateName.H, circuit_emitter(op.emitter), tag=tag)
            circuit.add_emission(op.emitter, op.photon, tag=tag)
            circuit.add_single(GateName.H, photon_qubit(op.photon), tag=tag)
            circuit.add_single(GateName.H, circuit_emitter(op.emitter), tag=tag)
        elif op.op_type is ReductionOpType.DISCONNECT:
            assert op.emitter is not None and op.emitter_b is not None
            circuit.add_cz(op.emitter, op.emitter_b, tag=tag)
        elif op.op_type is ReductionOpType.EMIT_ISOLATED:
            assert op.emitter is not None and op.photon is not None
            circuit.add_emission(op.emitter, op.photon, tag=tag)
            circuit.add_single(GateName.H, photon_qubit(op.photon), tag=tag)
        elif op.op_type is ReductionOpType.FREE_EMITTER:
            assert op.emitter is not None
            circuit.add_single(GateName.H, circuit_emitter(op.emitter), tag=tag)
        else:  # pragma: no cover - the enum is closed
            raise ValueError(f"unknown reduction operation {op!r}")
    return circuit


def circuit_emitter(index: int):
    """Tiny alias to keep :func:`forward_circuit_from_sequence` readable."""
    from repro.circuit.gates import emitter

    return emitter(index)
