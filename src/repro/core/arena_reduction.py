"""Arena-native reduction fast path.

:class:`ArenaReductionState` is the third drop-in implementation of the
reduction-state protocol (next to the :class:`networkx` oracle
:class:`repro.core.reduction.ReductionState` and the big-int
:class:`repro.core.packed_reduction.PackedReductionState`).  The working
graph lives in one preallocated 2-D ``np.uint64`` arena — one word row per
vertex, column ``j`` in bit ``j % 64`` of word ``j // 64`` — with the same
fixed bit layout as the packed state:

* photon ``p`` occupies bit ``p`` (``0 <= p < num_photons``);
* emitter ``e`` occupies bit ``num_photons + e`` (the arena doubles its
  emitter capacity when the pool outgrows it).

Every reversed operation is a vectorised ``np.bitwise_xor``/mask update over
fancy-indexed neighbour rows and the rule queries are ``np.bitwise_count``
popcounts, so no per-row Python integers are allocated on the hot path.  The
class answers the exact rule-query protocol (same tie-breaking, same
emitter-pool bookkeeping), so the greedy strategy produces **bit-identical
operation sequences** — and therefore bit-identical forward circuits — on any
of the three states; ``tests/test_arena.py`` property-tests the three-way
equivalence across the scenario zoo.

Per-instance selection: :func:`make_reduction_state` (in
:mod:`repro.core.packed_reduction`) keeps the big-int state for small graphs
and switches to the arena above a measured crossover
(``REPRO_GF2_ARENA_THRESHOLD``), because numpy dispatch overhead loses to
CPython's limb XOR below a few thousand vertices — see ``arena_results`` in
``BENCH_emitters.json`` for the tracked crossover.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from repro.core.reduction import (
    InsufficientEmittersError,
    ReductionOp,
    ReductionOpType,
    ReductionSequence,
)
from repro.graphs.graph_state import GraphState
from repro.utils.gf2_arena import bits_of_words, highest_bit_of_words
from repro.utils.gf2_packed import words_per_row

__all__ = ["ArenaReductionState"]

Vertex = Hashable

_WORD_BITS = 64


def _word_bit(index: int) -> tuple[int, np.uint64]:
    """``(word index, single-bit mask)`` addressing vertex bit ``index``."""
    return index // _WORD_BITS, np.uint64(1 << (index % _WORD_BITS))


class ArenaReductionState:
    """Mutable reduction state over a preallocated ``np.uint64`` row arena.

    The public surface mirrors :class:`repro.core.reduction.ReductionState`
    exactly (construction, queries, the seven reversed operations, pool
    bookkeeping and :meth:`finish`); only the storage differs.  See the
    module docstring for the bit layout.
    """

    def __init__(
        self,
        target_graph: GraphState,
        emitter_budget: int | None = None,
        strict_budget: bool = False,
        photon_order: Sequence[Vertex] | None = None,
    ):
        if target_graph.num_vertices == 0:
            raise ValueError("cannot reduce an empty target graph")
        vertices = list(photon_order) if photon_order is not None else target_graph.vertices()
        if (
            set(vertices) != set(target_graph.vertices())
            or len(vertices) != target_graph.num_vertices
        ):
            raise ValueError("photon_order must be a permutation of the target vertices")
        self.photon_of_vertex: dict[Vertex, int] = {v: i for i, v in enumerate(vertices)}
        self.num_photons = len(vertices)
        self.emitter_budget = emitter_budget
        self.strict_budget = bool(strict_budget)
        self.emitters_over_budget = 0

        n = self.num_photons
        self._emitter_capacity = max(8, n // 16)
        capacity = n + self._emitter_capacity
        self._n_words = words_per_row(capacity)
        self._arena = np.zeros((capacity, self._n_words), dtype=np.uint64)
        for u, v in target_graph.edges():
            i, j = self.photon_of_vertex[u], self.photon_of_vertex[v]
            wi, bi = _word_bit(i)
            wj, bj = _word_bit(j)
            self._arena[i, wj] |= bj
            self._arena[j, wi] |= bi

        # Per-word masks selecting the photon bits of a row.
        self._photon_mask = np.zeros(self._n_words, dtype=np.uint64)
        full, rem = divmod(n, _WORD_BITS)
        self._photon_mask[:full] = np.uint64(0xFFFFFFFFFFFFFFFF)
        if rem:
            self._photon_mask[full] = np.uint64((1 << rem) - 1)

        self._alive = np.ones(n, dtype=bool)
        self._alive_count = n
        self.free_emitters: set[int] = set()
        self.active_emitters: set[int] = set()
        self.num_emitters_allocated = 0
        self.operations: list[ReductionOp] = []

    # ------------------------------------------------------------------ #
    # Index helpers
    # ------------------------------------------------------------------ #

    def _eidx(self, emitter: int) -> int:
        return self.num_photons + emitter

    def _ensure_row(self, emitter: int) -> None:
        """Grow the arena (rows and word columns) to hold ``emitter``."""
        if emitter < self._emitter_capacity:
            return
        new_capacity = max(self._emitter_capacity * 2, emitter + 1)
        capacity = self.num_photons + new_capacity
        n_words = words_per_row(capacity)
        grown = np.zeros((capacity, n_words), dtype=np.uint64)
        grown[: self._arena.shape[0], : self._n_words] = self._arena
        self._arena = grown
        if n_words != self._n_words:
            mask = np.zeros(n_words, dtype=np.uint64)
            mask[: self._n_words] = self._photon_mask
            self._photon_mask = mask
            self._n_words = n_words
        self._emitter_capacity = new_capacity

    def _popcount(self, row: np.ndarray) -> int:
        return int(np.bitwise_count(row).sum())

    def _emitter_bits(self, row: np.ndarray) -> np.ndarray:
        """Ascending emitter ids present in ``row``."""
        return bits_of_words(row & ~self._photon_mask) - self.num_photons

    def _row_is_single_bit(self, row: np.ndarray, index: int) -> bool:
        word, bit = _word_bit(index)
        return bool(row[word] & bit) and self._popcount(row) == 1

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def remaining_photons(self) -> list[int]:
        """Photon indices still present in the working graph."""
        return [int(p) for p in np.nonzero(self._alive)[0]]

    def photon_in_graph(self, photon: int) -> bool:
        if not 0 <= photon < self.num_photons:
            return False
        return bool(self._alive[photon])

    def photon_neighbors(self, photon: int) -> tuple[set[int], set[int]]:
        """Neighbours of a photon, split into (photon indices, emitter ids)."""
        row = self._arena[photon]
        return (
            {int(b) for b in bits_of_words(row & self._photon_mask)},
            {int(b) for b in self._emitter_bits(row)},
        )

    def emitter_neighbors(self, emitter: int) -> tuple[set[int], set[int]]:
        """Neighbours of an emitter, split into (photon indices, emitter ids)."""
        row = self._arena[self._eidx(emitter)]
        return (
            {int(b) for b in bits_of_words(row & self._photon_mask)},
            {int(b) for b in self._emitter_bits(row)},
        )

    def emitter_degree(self, emitter: int) -> int:
        return self._popcount(self._arena[self._eidx(emitter)])

    def photon_degree(self, photon: int) -> int:
        return self._popcount(self._arena[photon])

    def is_done(self) -> bool:
        """True when every photon has been removed and every emitter is free."""
        return self._alive_count == 0 and not self.active_emitters

    # ------------------------------------------------------------------ #
    # Rule queries (bit-identical to the dict-based oracle)
    # ------------------------------------------------------------------ #

    def photon_neighbor_counts(self, photon: int) -> tuple[int, int]:
        """``(#photon neighbours, #emitter neighbours)`` of a photon."""
        row = self._arena[photon]
        photon_count = self._popcount(row & self._photon_mask)
        return photon_count, self._popcount(row) - photon_count

    def find_dangling_emitter(self, photon: int) -> int | None:
        """Smallest emitter adjacent to ``photon`` whose only neighbour is it."""
        n = self.num_photons
        for emitter in self._emitter_bits(self._arena[photon]):
            if self._popcount(self._arena[n + int(emitter)]) == 1:
                return int(emitter)
        return None

    def find_leaf_host(self, photon: int) -> int | None:
        """The emitter hosting ``photon`` when the photon has degree 1."""
        row = self._arena[photon]
        if self._popcount(row) != 1:
            return None
        bit = highest_bit_of_words(row)
        return bit - self.num_photons if bit >= self.num_photons else None

    def find_twin_emitter(self, photon: int) -> int | None:
        """First active emitter (ascending id) that is a non-adjacent twin."""
        if not self.active_emitters:
            return None
        row = self._arena[photon]
        n = self.num_photons
        actives = np.array(sorted(self.active_emitters), dtype=np.int64)
        rows_equal = (self._arena[n + actives] == row).all(axis=1)
        for emitter, equal in zip(actives, rows_equal):
            if not equal:
                continue
            word, bit = _word_bit(n + int(emitter))
            if row[word] & bit:
                continue  # adjacent: ABSORB_TWIN requires non-adjacent twins
            return int(emitter)
        return None

    def disconnect_absorb_candidate(self, photon: int) -> tuple[int, int] | None:
        """Best ``(cost, emitter)`` for the disconnect-absorb move, or ``None``."""
        n = self.num_photons
        best: tuple[int, int] | None = None
        for emitter in self._emitter_bits(self._arena[photon]):
            erow = self._arena[n + int(emitter)]
            photon_part = erow & self._photon_mask
            if not self._row_is_single_bit(photon_part, photon):
                continue  # the emitter has other photon neighbours
            cost = self._popcount(erow) - 1
            if best is None or cost < best[0]:
                best = (cost, int(emitter))
        return best

    def liberation_candidate(self) -> tuple[int, int] | None:
        """Best ``(cost, emitter)`` freeable by disconnecting it, or ``None``."""
        n = self.num_photons
        best: tuple[int, int] | None = None
        for emitter in sorted(self.active_emitters):
            erow = self._arena[n + emitter]
            if np.any(erow & self._photon_mask):
                continue
            cost = self._popcount(erow)
            if best is None or cost < best[0]:
                best = (cost, emitter)
        return best

    # ------------------------------------------------------------------ #
    # Emitter pool management (identical semantics to the oracle)
    # ------------------------------------------------------------------ #

    def acquire_free_emitter(self, preferred: int | None = None) -> int:
        """Return a free emitter id, allocating a new one if needed."""
        if preferred is not None and preferred in self.free_emitters:
            self.free_emitters.discard(preferred)
            self.active_emitters.add(preferred)
            return preferred
        if self.free_emitters:
            chosen = min(self.free_emitters)
            self.free_emitters.discard(chosen)
            self.active_emitters.add(chosen)
            return chosen
        if (
            self.emitter_budget is not None
            and self.num_emitters_allocated >= self.emitter_budget
        ):
            if self.strict_budget:
                raise InsufficientEmittersError(
                    f"emitter budget of {self.emitter_budget} exhausted"
                )
            self.emitters_over_budget += 1
        new_id = self.num_emitters_allocated
        self.num_emitters_allocated += 1
        self.active_emitters.add(new_id)
        self._ensure_row(new_id)
        return new_id

    # ------------------------------------------------------------------ #
    # Row update helpers
    # ------------------------------------------------------------------ #

    def _remove_vertex_bit(self, index: int) -> None:
        """Clear ``index``'s bit from every neighbour row and zero its row."""
        neighbours = bits_of_words(self._arena[index])
        word, bit = _word_bit(index)
        self._arena[neighbours, word] &= ~bit
        self._arena[index] = 0

    def _replace_photon_by_emitter(self, photon: int, emitter_index: int) -> None:
        """Move ``photon``'s neighbourhood onto row ``emitter_index``."""
        row = self._arena[photon].copy()
        neighbours = bits_of_words(row)
        self._arena[emitter_index] = row
        p_word, p_bit = _word_bit(photon)
        e_word, e_bit = _word_bit(emitter_index)
        self._arena[neighbours, p_word] &= ~p_bit
        self._arena[neighbours, e_word] |= e_bit
        self._arena[photon] = 0

    # ------------------------------------------------------------------ #
    # Reversed operations
    # ------------------------------------------------------------------ #

    def apply_swap(self, photon: int, emitter: int | None = None, tag: str = "") -> int:
        """Replace ``photon`` by a free emitter; returns the emitter id used."""
        if not self.photon_in_graph(photon):
            raise ValueError(f"photon {photon} is not in the working graph")
        emitter_id = self.acquire_free_emitter(preferred=emitter)
        self._replace_photon_by_emitter(photon, self._eidx(emitter_id))
        self._alive[photon] = False
        self._alive_count -= 1
        self.operations.append(
            ReductionOp(ReductionOpType.SWAP, emitter=emitter_id, photon=photon, tag=tag)
        )
        return emitter_id

    def apply_absorb_leaf(self, emitter: int, photon: int, tag: str = "") -> None:
        """Absorb a photon that dangles on ``emitter`` (degree-1 photon)."""
        if not self.photon_in_graph(photon):
            raise ValueError(f"photon {photon} is not in the working graph")
        eidx = self._eidx(emitter)
        if not self._row_is_single_bit(self._arena[photon], eidx):
            raise ValueError(
                f"photon {photon} is not dangling on emitter {emitter}; "
                "ABSORB_LEAF precondition violated"
            )
        p_word, p_bit = _word_bit(photon)
        self._arena[eidx, p_word] &= ~p_bit
        self._arena[photon] = 0
        self._alive[photon] = False
        self._alive_count -= 1
        self.operations.append(
            ReductionOp(ReductionOpType.ABSORB_LEAF, emitter=emitter, photon=photon, tag=tag)
        )

    def apply_absorb_dangling(self, emitter: int, photon: int, tag: str = "") -> None:
        """Absorb ``photon`` into a dangling emitter that is attached to it."""
        if not self.photon_in_graph(photon):
            raise ValueError(f"photon {photon} is not in the working graph")
        eidx = self._eidx(emitter)
        if not self._row_is_single_bit(self._arena[eidx], photon):
            raise ValueError(
                f"emitter {emitter} is not dangling on photon {photon}; "
                "ABSORB_DANGLING precondition violated"
            )
        e_word, e_bit = _word_bit(eidx)
        inherited = self._arena[photon].copy()
        inherited[e_word] &= ~e_bit
        self._arena[eidx] = inherited
        neighbours = bits_of_words(inherited)
        p_word, p_bit = _word_bit(photon)
        self._arena[neighbours, p_word] &= ~p_bit
        self._arena[neighbours, e_word] |= e_bit
        self._arena[photon] = 0
        self._alive[photon] = False
        self._alive_count -= 1
        self.operations.append(
            ReductionOp(
                ReductionOpType.ABSORB_DANGLING, emitter=emitter, photon=photon, tag=tag
            )
        )

    def apply_absorb_twin(self, emitter: int, photon: int, tag: str = "") -> None:
        """Absorb ``photon`` when it has exactly the emitter's neighbourhood."""
        if not self.photon_in_graph(photon):
            raise ValueError(f"photon {photon} is not in the working graph")
        eidx = self._eidx(emitter)
        e_word, e_bit = _word_bit(eidx)
        if self._arena[photon, e_word] & e_bit:
            raise ValueError(
                f"photon {photon} and emitter {emitter} are adjacent; "
                "ABSORB_TWIN requires non-adjacent twins"
            )
        if not np.array_equal(self._arena[photon], self._arena[eidx]):
            raise ValueError(
                f"photon {photon} and emitter {emitter} are not twins; "
                "ABSORB_TWIN precondition violated"
            )
        self._remove_vertex_bit(photon)
        self._alive[photon] = False
        self._alive_count -= 1
        self.operations.append(
            ReductionOp(ReductionOpType.ABSORB_TWIN, emitter=emitter, photon=photon, tag=tag)
        )

    def apply_disconnect(self, emitter_a: int, emitter_b: int, tag: str = "") -> None:
        """Remove an emitter-emitter edge (forward: one CZ gate)."""
        idx_a, idx_b = self._eidx(emitter_a), self._eidx(emitter_b)
        a_word, a_bit = _word_bit(idx_a)
        b_word, b_bit = _word_bit(idx_b)
        if not self._arena[idx_a, b_word] & b_bit:
            raise ValueError(
                f"emitters {emitter_a} and {emitter_b} are not adjacent; nothing to disconnect"
            )
        self._arena[idx_a, b_word] &= ~b_bit
        self._arena[idx_b, a_word] &= ~a_bit
        self.operations.append(
            ReductionOp(
                ReductionOpType.DISCONNECT, emitter=emitter_a, emitter_b=emitter_b, tag=tag
            )
        )

    def apply_emit_isolated(self, photon: int, emitter: int | None = None, tag: str = "") -> int:
        """Remove an isolated photon (forward: emit an unentangled photon)."""
        if not self.photon_in_graph(photon):
            raise ValueError(f"photon {photon} is not in the working graph")
        if np.any(self._arena[photon]):
            raise ValueError(f"photon {photon} is not isolated")
        if emitter is not None and emitter in self.free_emitters:
            emitter_id = emitter
        elif self.free_emitters:
            emitter_id = min(self.free_emitters)
        else:
            # Allocate a pool slot but keep it free: the emitter is only used
            # as an emission source and never becomes entangled.
            emitter_id = self.acquire_free_emitter()
            self.active_emitters.discard(emitter_id)
            self.free_emitters.add(emitter_id)
        self._alive[photon] = False
        self._alive_count -= 1
        self.operations.append(
            ReductionOp(
                ReductionOpType.EMIT_ISOLATED, emitter=emitter_id, photon=photon, tag=tag
            )
        )
        return emitter_id

    def apply_free_emitter(self, emitter: int, tag: str = "") -> None:
        """Release an isolated active emitter back into the free pool."""
        if emitter not in self.active_emitters:
            raise ValueError(f"emitter {emitter} is not active")
        if np.any(self._arena[self._eidx(emitter)]):
            raise ValueError(f"emitter {emitter} is not isolated and cannot be freed")
        self.active_emitters.discard(emitter)
        self.free_emitters.add(emitter)
        self.operations.append(
            ReductionOp(ReductionOpType.FREE_EMITTER, emitter=emitter, tag=tag)
        )

    def free_isolated_emitters(self, tag: str = "") -> list[int]:
        """Free every active emitter that has become isolated; return their ids."""
        freed = []
        for emitter in sorted(self.active_emitters):
            if not np.any(self._arena[self._eidx(emitter)]):
                self.apply_free_emitter(emitter, tag=tag)
                freed.append(emitter)
        return freed

    # ------------------------------------------------------------------ #
    # Finishing
    # ------------------------------------------------------------------ #

    def disconnect_all_emitter_edges(self, tag: str = "") -> int:
        """Remove every remaining emitter-emitter edge in one sorted pass."""
        pairs = [
            (emitter, int(other))
            for emitter in sorted(self.active_emitters)
            for other in self._emitter_bits(self._arena[self._eidx(emitter)])
            if int(other) > emitter
        ]
        for a, b in pairs:
            self.apply_disconnect(a, b, tag=tag)
        return len(pairs)

    def finish(self, tag: str = "") -> ReductionSequence:
        """Disconnect leftover emitter edges, free emitters, return the sequence."""
        if self._alive_count:
            raise RuntimeError(
                "cannot finish the reduction: photons remain in the working graph "
                f"({self.remaining_photons()})"
            )
        self.disconnect_all_emitter_edges(tag=tag)
        self.free_isolated_emitters(tag=tag)
        if self.active_emitters:  # pragma: no cover - defensive
            raise RuntimeError(f"emitters left active after finish: {self.active_emitters}")
        return ReductionSequence(
            operations=list(self.operations),
            num_photons=self.num_photons,
            num_emitters=max(self.num_emitters_allocated, 1),
            photon_of_vertex=dict(self.photon_of_vertex),
            emitters_over_budget=self.emitters_over_budget,
        )
