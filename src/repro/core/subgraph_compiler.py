"""Per-subgraph compilation (paper §IV.B).

Each subgraph (leaf) produced by the partitioner is small enough
(``g_max = 7`` by default) that a search over photon processing orders is
affordable.  The compiler

1. enumerates candidate processing orders — exhaustively for very small
   subgraphs, otherwise a mix of degree-based heuristics (the paper
   prioritises low-degree vertices), BFS orders and random samples;
2. runs the greedy reduction for every candidate and keeps the circuits with
   the minimal number of emitter-emitter CNOTs;
3. breaks ties by the average photon-loss duration of the ALAP-scheduled
   circuit (the paper's hardware-aware objective);
4. repeats the above for several emitter budgets (the *flexible resource
   constraint*: ``n_e^min``, ``n_e^min + 1`` ... ``n_e^min + slack``), so the
   scheduler can later trade emitters for parallelism.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np

from repro.circuit.circuit import Circuit
from repro.circuit.metrics import CircuitMetrics, compute_metrics
from repro.core.config import CompilerConfig
from repro.core.ordering import optimize_emission_ordering
from repro.core.plan_scoring import score_sequence
from repro.core.reduction import ReductionSequence
from repro.core.strategies import GreedyReductionStrategy, greedy_reduce
from repro.graphs.entanglement import minimum_emitters
from repro.graphs.graph_state import GraphState
from repro.utils.misc import make_rng

__all__ = ["SubgraphCompilationResult", "SubgraphCompiler", "candidate_processing_orders"]

Vertex = Hashable


@dataclass
class SubgraphCompilationResult:
    """Best compilation found for one subgraph under one emitter budget."""

    subgraph: GraphState
    processing_order: list[Vertex]
    sequence: ReductionSequence
    circuit: Circuit
    metrics: CircuitMetrics
    emitter_budget: int
    num_emitters_used: int
    orders_evaluated: int

    @property
    def num_photons(self) -> int:
        return self.subgraph.num_vertices

    @property
    def num_emitter_emitter_cnots(self) -> int:
        return self.metrics.num_emitter_emitter_cnots

    @property
    def duration(self) -> float:
        return self.metrics.duration

    @property
    def priority(self) -> float:
        """The scheduling priority ``P_c = n_p / T_c`` of the paper."""
        if self.duration <= 0:
            return float("inf")
        return self.num_photons / self.duration

    def emission_order(self) -> list[Vertex]:
        """Subgraph vertices in forward emission order."""
        return list(reversed(self.processing_order))


def candidate_processing_orders(
    subgraph: GraphState,
    max_candidates: int,
    exhaustive_threshold: int,
    rng: np.random.Generator,
) -> list[list[Vertex]]:
    """Candidate reversed-time processing orders for a subgraph.

    Always includes the paper's low-degree-first heuristic; small subgraphs
    are enumerated exhaustively (subject to ``max_candidates``).
    """
    vertices = subgraph.vertices()
    n = len(vertices)
    if n <= 1:
        return [list(vertices)]

    candidates: list[list[Vertex]] = []
    seen: set[tuple[Vertex, ...]] = set()

    def add(order: Sequence[Vertex]) -> None:
        """Record one candidate order, deduplicated, up to the budget."""
        key = tuple(order)
        if key not in seen and len(candidates) < max_candidates:
            seen.add(key)
            candidates.append(list(order))

    if n <= exhaustive_threshold:
        for permutation in itertools.permutations(vertices):
            add(permutation)
            if len(candidates) >= max_candidates:
                break
        return candidates

    degree = {v: subgraph.degree(v) for v in vertices}
    add(sorted(vertices, key=lambda v: (degree[v], repr(v))))
    add(sorted(vertices, key=lambda v: (-degree[v], repr(v))))
    add(list(reversed(vertices)))
    add(list(vertices))

    # BFS-based orders from a few seeds (locality-preserving emission).
    import networkx as nx

    for seed_vertex in sorted(vertices, key=lambda v: -degree[v])[:4]:
        bfs_order = [seed_vertex]
        visited = {seed_vertex}
        frontier = [seed_vertex]
        while frontier:
            next_frontier = []
            for u in frontier:
                for w in sorted(subgraph.neighbors(u), key=repr):
                    if w not in visited:
                        visited.add(w)
                        bfs_order.append(w)
                        next_frontier.append(w)
            frontier = next_frontier
        for leftover in vertices:
            if leftover not in visited:
                bfs_order.append(leftover)
                visited.add(leftover)
        add(bfs_order)
        add(list(reversed(bfs_order)))
    del nx

    while len(candidates) < max_candidates:
        permutation = list(vertices)
        rng.shuffle(permutation)
        add(permutation)
        if len(seen) >= max_candidates * 4:  # pragma: no cover - safety valve
            break
    return candidates


class SubgraphCompiler:
    """Search-based compiler for a single subgraph."""

    def __init__(self, config: CompilerConfig | None = None):
        self.config = config if config is not None else CompilerConfig()
        self._rng = make_rng(self.config.seed)

    # ------------------------------------------------------------------ #

    def _optimised_ordering(self, subgraph: GraphState):
        """Ordering-search result for ``subgraph`` (``None`` when disabled)."""
        config = self.config
        if config.ordering_strategy == "natural" or subgraph.num_vertices <= 1:
            return None
        return optimize_emission_ordering(
            subgraph,
            strategy=config.ordering_strategy,
            seed=config.seed,
            iterations=config.ordering_iterations,
        )

    def compile(
        self,
        subgraph: GraphState,
        emitter_budget: int | None = None,
        seeded_order: Sequence[Vertex] | None = None,
    ) -> SubgraphCompilationResult:
        """Compile ``subgraph`` under a single emitter budget.

        ``seeded_order`` injects a precomputed processing order at the front
        of the candidate pool; when omitted and an ordering strategy is
        configured, the emission-ordering optimiser provides one.
        """
        if subgraph.num_vertices == 0:
            raise ValueError("cannot compile an empty subgraph")
        config = self.config
        if emitter_budget is None:
            emitter_budget = minimum_emitters(subgraph)
        strategy = GreedyReductionStrategy(
            emitter_budget=emitter_budget,
            enable_twin_rule=config.use_twin_rule,
        )
        orders = candidate_processing_orders(
            subgraph,
            max_candidates=config.max_order_candidates,
            exhaustive_threshold=config.exhaustive_order_threshold,
            rng=self._rng,
        )
        if seeded_order is None:
            # Seed the search with the incremental-engine ordering optimiser:
            # its low-peak emission ordering, replayed in reversed time, is a
            # strong processing-order candidate under tight budgets.
            optimised = self._optimised_ordering(subgraph)
            if optimised is not None:
                seeded_order = list(reversed(optimised.ordering))
        if seeded_order is not None:
            candidate = list(seeded_order)
            if candidate in orders:
                orders.remove(candidate)
            orders.insert(0, candidate)

        # Rank candidate orders by the op-sequence score (bit-identical to
        # the circuit-backed metrics, see repro.core.plan_scoring); only the
        # winning order pays for the circuit build and the full metrics.
        best: tuple[tuple[float, float, float], list[Vertex], ReductionSequence] | None
        best = None
        for order in orders:
            sequence = greedy_reduce(subgraph, processing_order=order, strategy=strategy)
            key = score_sequence(
                sequence,
                durations=config.hardware.durations,
                policy="alap",
                cnot_cutoff=best[0][0] if best is not None else None,
            )
            if key is not None and (best is None or key < best[0]):
                best = (key, list(order), sequence)
        assert best is not None
        _, best_order, best_sequence = best
        circuit = best_sequence.to_circuit()
        metrics = compute_metrics(
            circuit,
            durations=config.hardware.durations,
            policy="alap",
        )
        return SubgraphCompilationResult(
            subgraph=subgraph,
            processing_order=best_order,
            sequence=best_sequence,
            circuit=circuit,
            metrics=metrics,
            emitter_budget=emitter_budget,
            num_emitters_used=best_sequence.num_emitters,
            orders_evaluated=len(orders),
        )

    def compile_flexible(
        self, subgraph: GraphState
    ) -> dict[int, SubgraphCompilationResult]:
        """Compile under the flexible resource constraint.

        Returns a map ``emitter budget -> best result`` for budgets
        ``n_e^min .. n_e^min + slack``.  Budgets that do not change the
        outcome are still reported so the scheduler can reason uniformly.
        """
        base = minimum_emitters(subgraph)
        seeded_order: list[Vertex] | None = None
        optimised = self._optimised_ordering(subgraph)
        if optimised is not None:
            # One search serves every budget: it certifies a (possibly lower)
            # per-subgraph emitter bound and seeds each order search.
            base = min(base, max(optimised.peak_height, 1))
            seeded_order = list(reversed(optimised.ordering))
        results: dict[int, SubgraphCompilationResult] = {}
        for slack in range(self.config.flexible_emitter_slack + 1):
            budget = base + slack
            results[budget] = self.compile(
                subgraph, emitter_budget=budget, seeded_order=seeded_order
            )
        return results
