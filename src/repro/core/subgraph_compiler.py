"""Per-subgraph compilation (paper §IV.B).

Each subgraph (leaf) produced by the partitioner is small enough
(``g_max = 7`` by default) that a search over photon processing orders is
affordable.  The compiler

1. enumerates candidate processing orders — exhaustively for very small
   subgraphs, otherwise a mix of degree-based heuristics (the paper
   prioritises low-degree vertices), BFS orders and random samples;
2. runs the greedy reduction for every candidate and keeps the circuits with
   the minimal number of emitter-emitter CNOTs;
3. breaks ties by the average photon-loss duration of the ALAP-scheduled
   circuit (the paper's hardware-aware objective);
4. repeats the above for several emitter budgets (the *flexible resource
   constraint*: ``n_e^min``, ``n_e^min + 1`` ... ``n_e^min + slack``), so the
   scheduler can later trade emitters for parallelism.

**Isomorphism memoization.**  Structured targets hand the partitioner the
same small graph over and over up to vertex relabeling, so the search runs
in *canonical space*: the leaf is canonically relabelled
(:mod:`repro.graphs.canonical_form`), the search runs on the canonical
representative with an RNG derived from the canonical key (identical leaves
always run identical searches, regardless of partition order or labels), and
the winning order/sequence/metrics are memoized in the
:mod:`repro.core.compile_cache` keyed by canonical key, emitter budget and
the search-relevant config fingerprint.  On a hit the cached sequence is
remapped through the canonical permutation instead of re-searched; results
are bit-identical to a cache-off compile by construction.  Graphs too large
or too symmetric to canonicalise cheaply fall back to the direct
(uncached) search.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np

from repro.circuit.circuit import Circuit
from repro.circuit.metrics import CircuitMetrics, compute_metrics
from repro.core.compile_cache import (
    CachedCompilation,
    SubgraphCompileCache,
    config_fingerprint,
    get_process_cache,
)
from repro.core.config import CompilerConfig
from repro.core.ordering import optimize_emission_ordering
from repro.core.plan_scoring import score_sequence
from repro.core.reduction import ReductionSequence
from repro.core.strategies import GreedyReductionStrategy, greedy_reduce
from repro.graphs.canonical_form import (
    CanonicalForm,
    CanonicalizationBudgetError,
    canonical_form,
    canonical_key_digest,
)
from repro.graphs.entanglement import minimum_emitters
from repro.graphs.graph_state import GraphState
from repro.utils.misc import make_rng

__all__ = ["SubgraphCompilationResult", "SubgraphCompiler", "candidate_processing_orders"]

Vertex = Hashable

#: Leaves above this size skip canonicalisation (and hence the cache): the
#: individualization search is sized for the ``g_max ≈ 7`` leaf regime, and
#: larger graphs essentially never repeat anyway.
CANONICAL_MAX_VERTICES = 12


@dataclass
class SubgraphCompilationResult:
    """Best compilation found for one subgraph under one emitter budget."""

    subgraph: GraphState
    processing_order: list[Vertex]
    sequence: ReductionSequence
    circuit: Circuit
    metrics: CircuitMetrics
    emitter_budget: int
    num_emitters_used: int
    orders_evaluated: int

    @property
    def num_photons(self) -> int:
        return self.subgraph.num_vertices

    @property
    def num_emitter_emitter_cnots(self) -> int:
        return self.metrics.num_emitter_emitter_cnots

    @property
    def duration(self) -> float:
        return self.metrics.duration

    @property
    def priority(self) -> float:
        """The scheduling priority ``P_c = n_p / T_c`` of the paper."""
        if self.duration <= 0:
            return float("inf")
        return self.num_photons / self.duration

    def emission_order(self) -> list[Vertex]:
        """Subgraph vertices in forward emission order."""
        return list(reversed(self.processing_order))


def candidate_processing_orders(
    subgraph: GraphState,
    max_candidates: int,
    exhaustive_threshold: int,
    rng: np.random.Generator,
) -> list[list[Vertex]]:
    """Candidate reversed-time processing orders for a subgraph.

    Always includes the paper's low-degree-first heuristic; small subgraphs
    are enumerated exhaustively (subject to ``max_candidates``).
    """
    vertices = subgraph.vertices()
    n = len(vertices)
    if n <= 1:
        return [list(vertices)]

    candidates: list[list[Vertex]] = []
    seen: set[tuple[Vertex, ...]] = set()

    def add(order: Sequence[Vertex]) -> None:
        """Record one candidate order, deduplicated, up to the budget."""
        key = tuple(order)
        if key not in seen and len(candidates) < max_candidates:
            seen.add(key)
            candidates.append(list(order))

    if n <= exhaustive_threshold:
        for permutation in itertools.permutations(vertices):
            add(permutation)
            if len(candidates) >= max_candidates:
                break
        return candidates

    degree = {v: subgraph.degree(v) for v in vertices}
    add(sorted(vertices, key=lambda v: (degree[v], repr(v))))
    add(sorted(vertices, key=lambda v: (-degree[v], repr(v))))
    add(list(reversed(vertices)))
    add(list(vertices))

    # BFS-based orders from a few seeds (locality-preserving emission).
    for seed_vertex in sorted(vertices, key=lambda v: -degree[v])[:4]:
        bfs_order = [seed_vertex]
        visited = {seed_vertex}
        frontier = [seed_vertex]
        while frontier:
            next_frontier = []
            for u in frontier:
                for w in sorted(subgraph.neighbors(u), key=repr):
                    if w not in visited:
                        visited.add(w)
                        bfs_order.append(w)
                        next_frontier.append(w)
            frontier = next_frontier
        for leftover in vertices:
            if leftover not in visited:
                bfs_order.append(leftover)
                visited.add(leftover)
        add(bfs_order)
        add(list(reversed(bfs_order)))

    while len(candidates) < max_candidates:
        permutation = list(vertices)
        rng.shuffle(permutation)
        add(permutation)
        if len(seen) >= max_candidates * 4:  # pragma: no cover - safety valve
            break
    return candidates


class SubgraphCompiler:
    """Search-based compiler for a single subgraph.

    Parameters
    ----------
    config : CompilerConfig | None, optional
        Compilation knobs; ``None`` uses the defaults.
    cache : SubgraphCompileCache | None, optional
        Explicit compile cache (tests, dedicated pools).  By default the
        process-wide cache of :func:`repro.core.compile_cache.get_process_cache`
        is used when ``config.subgraph_cache`` is enabled.
    """

    def __init__(
        self,
        config: CompilerConfig | None = None,
        cache: SubgraphCompileCache | None = None,
    ):
        self.config = config if config is not None else CompilerConfig()
        self._rng = make_rng(self.config.seed)
        self._fingerprint = config_fingerprint(self.config)
        if cache is not None:
            self.cache = cache
        elif self.config.subgraph_cache:
            self.cache = get_process_cache(self.config.subgraph_cache_size)
        else:
            self.cache = None

    # ------------------------------------------------------------------ #

    def _optimised_ordering(self, subgraph: GraphState):
        """Ordering-search result for ``subgraph`` (``None`` when disabled)."""
        config = self.config
        if config.ordering_strategy == "natural" or subgraph.num_vertices <= 1:
            return None
        return optimize_emission_ordering(
            subgraph,
            strategy=config.ordering_strategy,
            seed=config.seed,
            iterations=config.ordering_iterations,
        )

    def _canonicalize(self, subgraph: GraphState) -> CanonicalForm | None:
        """Canonical form of a leaf, or ``None`` when out of the cheap regime."""
        if subgraph.num_vertices > CANONICAL_MAX_VERTICES:
            return None
        try:
            return canonical_form(subgraph)
        except CanonicalizationBudgetError:  # pragma: no cover - needs n > 12
            return None

    def _derived_rng(self, canonical_key: tuple[int, int]) -> np.random.Generator:
        """Order-search RNG derived from the canonical key and the config seed.

        Identical subgraphs therefore always sample identical candidate
        orders, no matter how many leaves were compiled before them — the
        property that makes the compile cache coherent (and leaf results
        independent of partition order).
        """
        digest = canonical_key_digest(canonical_key)
        return make_rng(
            np.random.default_rng(
                [
                    self.config.seed & 0xFFFFFFFF,
                    int(digest[:16], 16),
                    int(digest[16:32], 16),
                ]
            )
        )

    # ------------------------------------------------------------------ #
    # The ordering search (shared by the canonical and direct paths)
    # ------------------------------------------------------------------ #

    def _search(
        self,
        graph: GraphState,
        emitter_budget: int,
        seeded_order: Sequence[Vertex] | None,
        rng: np.random.Generator,
    ) -> tuple[list[Vertex], ReductionSequence, int, int]:
        """Best processing order for ``graph`` under ``emitter_budget``.

        Returns ``(order, sequence, orders_evaluated, search_max_emitters)``
        where the last entry is the largest emitter pool *any* candidate
        allocated — strictly below the budget, the search provably never felt
        budget pressure and its result holds for every larger budget.
        """
        config = self.config
        strategy = GreedyReductionStrategy(
            emitter_budget=emitter_budget,
            enable_twin_rule=config.use_twin_rule,
        )
        orders = candidate_processing_orders(
            graph,
            max_candidates=config.max_order_candidates,
            exhaustive_threshold=config.exhaustive_order_threshold,
            rng=rng,
        )
        if seeded_order is not None:
            candidate = list(seeded_order)
            if candidate in orders:
                orders.remove(candidate)
            orders.insert(0, candidate)

        # Rank candidate orders by the op-sequence score (bit-identical to
        # the circuit-backed metrics, see repro.core.plan_scoring); only the
        # winning order pays for the circuit build and the full metrics.
        best: tuple[tuple[float, float, float], list[Vertex], ReductionSequence] | None
        best = None
        search_max_emitters = 0
        for order in orders:
            sequence = greedy_reduce(graph, processing_order=order, strategy=strategy)
            search_max_emitters = max(search_max_emitters, sequence.num_emitters)
            key = score_sequence(
                sequence,
                durations=config.hardware.durations,
                policy="alap",
                cnot_cutoff=best[0][0] if best is not None else None,
            )
            if key is not None and (best is None or key < best[0]):
                best = (key, list(order), sequence)
        assert best is not None
        _, best_order, best_sequence = best
        return best_order, best_sequence, len(orders), search_max_emitters

    def _search_canonical(
        self,
        canonical: CanonicalForm,
        canon_graph: GraphState,
        emitter_budget: int,
        canon_seed: tuple[int, ...] | None,
    ) -> CachedCompilation:
        """Run the search on the canonical representative; package the entry."""
        order, sequence, evaluated, search_max = self._search(
            canon_graph,
            emitter_budget,
            list(canon_seed) if canon_seed is not None else None,
            self._derived_rng(canonical.key),
        )
        circuit = sequence.to_circuit()
        metrics = compute_metrics(
            circuit,
            durations=self.config.hardware.durations,
            policy="alap",
        )
        return CachedCompilation(
            processing_order=tuple(order),
            operations=tuple(sequence.operations),
            num_photons=sequence.num_photons,
            num_emitters=sequence.num_emitters,
            emitters_over_budget=sequence.emitters_over_budget,
            metrics=metrics,
            orders_evaluated=evaluated,
            search_max_emitters=search_max,
            _circuit=circuit,
        )

    def _result_from_entry(
        self,
        subgraph: GraphState,
        canonical: CanonicalForm,
        entry: CachedCompilation,
        emitter_budget: int,
    ) -> SubgraphCompilationResult:
        """Remap a canonical-space entry back onto ``subgraph``'s labels.

        Photon indices *are* canonical labels (``photon_of_vertex[v] =
        to_canonical[v]``), so the cached op sequence and circuit carry over
        unchanged; only the processing order needs the inverse permutation.
        """
        order = [canonical.from_canonical[c] for c in entry.processing_order]
        sequence = ReductionSequence(
            operations=list(entry.operations),
            num_photons=entry.num_photons,
            num_emitters=entry.num_emitters,
            photon_of_vertex={
                v: canonical.to_canonical[v] for v in subgraph.vertices()
            },
            emitters_over_budget=entry.emitters_over_budget,
        )
        return SubgraphCompilationResult(
            subgraph=subgraph,
            processing_order=order,
            sequence=sequence,
            # Hand out a (cheap, leaf-sized) copy: Circuit is mutable, and a
            # caller editing a result must never corrupt the shared cache
            # entry behind every other compilation in the process.
            circuit=entry.circuit().copy(),
            metrics=entry.metrics,
            emitter_budget=emitter_budget,
            num_emitters_used=entry.num_emitters,
            orders_evaluated=entry.orders_evaluated,
        )

    # ------------------------------------------------------------------ #
    # Compilation entry points
    # ------------------------------------------------------------------ #

    def compile(
        self,
        subgraph: GraphState,
        emitter_budget: int | None = None,
        seeded_order: Sequence[Vertex] | None = None,
    ) -> SubgraphCompilationResult:
        """Compile ``subgraph`` under a single emitter budget.

        ``seeded_order`` injects a precomputed processing order at the front
        of the candidate pool; when omitted and an ordering strategy is
        configured, the emission-ordering optimiser provides one.
        """
        result, _ = self._compile_with_info(subgraph, emitter_budget, seeded_order)
        return result

    def _compile_with_info(
        self,
        subgraph: GraphState,
        emitter_budget: int | None = None,
        seeded_order: Sequence[Vertex] | None = None,
        canonical: CanonicalForm | None = None,
    ) -> tuple[SubgraphCompilationResult, int]:
        """:meth:`compile` plus the search's ``search_max_emitters``."""
        if subgraph.num_vertices == 0:
            raise ValueError("cannot compile an empty subgraph")
        if emitter_budget is None:
            emitter_budget = minimum_emitters(subgraph)
        if canonical is None:
            canonical = self._canonicalize(subgraph)
        if canonical is None:
            return self._compile_direct(subgraph, emitter_budget, seeded_order)

        canon_graph: GraphState | None = None
        if seeded_order is not None:
            canon_seed: tuple[int, ...] | None = tuple(
                canonical.to_canonical[v] for v in seeded_order
            )
        else:
            canon_seed = None
            if self.config.ordering_strategy != "natural":
                # Seed the search with the incremental-engine ordering
                # optimiser, run in canonical space so it is label-invariant:
                # its low-peak emission ordering, replayed in reversed time,
                # is a strong processing-order candidate under tight budgets.
                canon_graph = canonical.build_graph()
                optimised = self._optimised_ordering(canon_graph)
                if optimised is not None:
                    canon_seed = tuple(reversed(optimised.ordering))

        key = (canonical.key, emitter_budget, canon_seed, self._fingerprint)
        entry = self.cache.get(key) if self.cache is not None else None
        if entry is None:
            if canon_graph is None:
                canon_graph = canonical.build_graph()
            entry = self._search_canonical(
                canonical, canon_graph, emitter_budget, canon_seed
            )
            if self.cache is not None:
                self.cache.put(key, entry)
        result = self._result_from_entry(subgraph, canonical, entry, emitter_budget)
        return result, entry.search_max_emitters

    def _compile_direct(
        self,
        subgraph: GraphState,
        emitter_budget: int,
        seeded_order: Sequence[Vertex] | None,
    ) -> tuple[SubgraphCompilationResult, int]:
        """The uncached search on the subgraph's own labels (large leaves)."""
        if seeded_order is None:
            optimised = self._optimised_ordering(subgraph)
            if optimised is not None:
                seeded_order = list(reversed(optimised.ordering))
        order, sequence, evaluated, search_max = self._search(
            subgraph, emitter_budget, seeded_order, self._rng
        )
        circuit = sequence.to_circuit()
        metrics = compute_metrics(
            circuit,
            durations=self.config.hardware.durations,
            policy="alap",
        )
        result = SubgraphCompilationResult(
            subgraph=subgraph,
            processing_order=order,
            sequence=sequence,
            circuit=circuit,
            metrics=metrics,
            emitter_budget=emitter_budget,
            num_emitters_used=sequence.num_emitters,
            orders_evaluated=evaluated,
        )
        return result, search_max

    def compile_flexible(
        self, subgraph: GraphState
    ) -> dict[int, SubgraphCompilationResult]:
        """Compile under the flexible resource constraint.

        Returns a map ``emitter budget -> best result`` for budgets
        ``n_e^min .. n_e^min + slack``.  Budgets that do not change the
        outcome are still reported so the scheduler can reason uniformly;
        when a search provably never felt budget pressure (no candidate
        allocated up to the budget), the *same result object* is reported
        for every larger budget instead of re-searching — such a shared
        object keeps the ``emitter_budget`` of the search that produced it
        (the dict key, not the field, names the budget slot).
        """
        if subgraph.num_vertices == 0:
            raise ValueError("cannot compile an empty subgraph")
        base = minimum_emitters(subgraph)
        canonical = self._canonicalize(subgraph)
        seeded_order: list[Vertex] | None = None
        if self.config.ordering_strategy != "natural":
            # One search serves every budget: it certifies a (possibly lower)
            # per-subgraph emitter bound and seeds each order search.  Run in
            # canonical space whenever the leaf canonicalises.
            search_graph = (
                canonical.build_graph() if canonical is not None else subgraph
            )
            optimised = self._optimised_ordering(search_graph)
            if optimised is not None:
                base = min(base, max(optimised.peak_height, 1))
                ordered = list(reversed(optimised.ordering))
                if canonical is not None:
                    seeded_order = [canonical.from_canonical[c] for c in ordered]
                else:
                    seeded_order = ordered
        results: dict[int, SubgraphCompilationResult] = {}
        previous: tuple[SubgraphCompilationResult, int, int] | None = None
        for slack in range(self.config.flexible_emitter_slack + 1):
            budget = base + slack
            if previous is not None and previous[2] < previous[1]:
                # The last search never hit its budget: a larger budget
                # cannot change any candidate's reduction, so the result is
                # provably identical — report it as-is.
                results[budget] = previous[0]
                continue
            result, search_max = self._compile_with_info(
                subgraph, budget, seeded_order, canonical
            )
            results[budget] = result
            previous = (result, budget, search_max)
        return results
