"""Greedy reduction strategy shared by the baseline and the framework.

Given a *processing order* (the order in which photons are handled in
reversed time — i.e. the reverse of the forward emission order), the greedy
strategy removes one photon at a time by trying the reversed operations in a
fixed priority:

1. ``EMIT_ISOLATED`` for isolated photons (free);
2. ``ABSORB_DANGLING`` — a dangling emitter attached to the photon takes over
   its neighbourhood (free);
3. ``ABSORB_LEAF`` — the photon dangles on an emitter (free);
4. ``ABSORB_TWIN`` — an emitter with an identical neighbourhood absorbs the
   photon (free);
5. otherwise the photon must be handed to an emitter, and the strategy picks
   the cheaper of two moves by an immediate + deferred CNOT cost estimate:

   * **disconnect-absorb** — an emitter adjacent to the photon is first cut
     loose from its other (emitter) neighbours and then absorbs the photon;
   * **swap** — the photon is replaced by a free emitter (an emission and a
     measurement); when the pool is exhausted an emitter is liberated by
     disconnecting it from the other emitters first.

   Both moves leave the photon's former emitter-neighbours entangled with the
   chosen emitter; those edges eventually cost one emitter-emitter CNOT each,
   which is what the deferred term of the cost estimate accounts for.

The quality of the resulting circuit therefore depends on the processing
order, the emitter budget and the allocation policy — exactly the knobs the
paper's framework turns (per-subgraph ordering search, LC pre-processing,
flexible emitter constraint and scheduling).  The baseline uses the natural
vertex order with a minimal emitter pool.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Sequence, Union

from repro.core.packed_reduction import PackedReductionState, make_reduction_state
from repro.core.reduction import (
    InsufficientEmittersError,
    ReductionSequence,
    ReductionState,
)
from repro.graphs.graph_state import GraphState

__all__ = ["GreedyReductionStrategy", "greedy_reduce", "reduce_photon"]

Vertex = Hashable

#: Either working-graph representation; both answer the same rule-query
#: protocol with identical tie-breaking, so the strategy below is
#: representation-agnostic and produces bit-identical op sequences.
AnyReductionState = Union[ReductionState, PackedReductionState]


@dataclass(frozen=True)
class GreedyReductionStrategy:
    """Configuration of the greedy reduction.

    Attributes:
        emitter_budget: soft maximum number of emitters (``None`` = unbounded).
        strict_budget: raise :class:`InsufficientEmittersError` instead of
            exceeding the budget.
        enable_twin_rule: allow the ``ABSORB_TWIN`` rewrite.
        free_isolated_eagerly: release isolated emitters as soon as they
            appear (keeps the usable pool large at no gate cost).
        prefer_disconnect_over_allocate: when a swap needs an emitter and none
            is free, prefer liberating an existing emitter over allocating a
            new one even if the budget has headroom.  This reproduces the
            minimal-emitter behaviour of the baseline protocols at the price
            of extra emitter-emitter CNOTs.
        allow_disconnect_absorb: enable the costed disconnect-absorb move.
            The prior-art protocols (Li et al. / GraphiQ's deterministic
            solver) fall back to a time-reversed measurement (our ``SWAP``)
            whenever no free absorption exists, so the baseline disables this
            move; the hardware-aware framework keeps it.
        preferred_emitters: optional pool of emitter ids to prefer when
            acquiring a free emitter (used by the scheduler to implement
            emitter affinity between a subgraph and its assigned emitters).
    """

    emitter_budget: int | None = None
    strict_budget: bool = False
    enable_twin_rule: bool = True
    free_isolated_eagerly: bool = True
    prefer_disconnect_over_allocate: bool = False
    allow_disconnect_absorb: bool = True
    preferred_emitters: tuple[int, ...] = ()


# --------------------------------------------------------------------------- #
# Rule helpers
# --------------------------------------------------------------------------- #


def _liberate(state: AnyReductionState, emitter: int, tag: str) -> None:
    """Disconnect ``emitter`` from all of its (emitter) neighbours and free it."""
    _, neighbours = state.emitter_neighbors(emitter)
    for other in sorted(neighbours):
        state.apply_disconnect(emitter, other, tag=tag)
    state.apply_free_emitter(emitter, tag=tag)


# --------------------------------------------------------------------------- #
# Photon removal
# --------------------------------------------------------------------------- #


def reduce_photon(
    state: AnyReductionState,
    photon: int,
    strategy: GreedyReductionStrategy,
    tag: str = "",
) -> None:
    """Remove one photon from the working graph using the rule priority.

    This is exposed separately from :func:`greedy_reduce` so that the
    subgraph search (:mod:`repro.core.subgraph_compiler`) can drive photon
    removal step by step while exploring different processing orders.  All
    graph inspection goes through the shared rule-query protocol, so the
    same code drives both the dict-based oracle and the packed fast path.
    """
    if state.photon_degree(photon) == 0:
        state.apply_emit_isolated(photon, tag=tag)
        return

    dangling = state.find_dangling_emitter(photon)
    if dangling is not None:
        state.apply_absorb_dangling(dangling, photon, tag=tag)
        return

    leaf_host = state.find_leaf_host(photon)
    if leaf_host is not None:
        state.apply_absorb_leaf(leaf_host, photon, tag=tag)
        return

    if strategy.enable_twin_rule:
        twin = state.find_twin_emitter(photon)
        if twin is not None:
            state.apply_absorb_twin(twin, photon, tag=tag)
            return

    # Costed choice between disconnect-absorb and swap.
    deferred_edges = state.photon_neighbor_counts(photon)[1]

    absorb_option = (
        state.disconnect_absorb_candidate(photon)
        if strategy.allow_disconnect_absorb
        else None
    )
    absorb_cost = math.inf
    if absorb_option is not None:
        # The chosen emitter stops counting as a deferred edge once it hosts
        # the photon's neighbourhood.
        absorb_cost = absorb_option[0] + max(0, deferred_edges - 1)

    budget = strategy.emitter_budget
    can_allocate = budget is None or state.num_emitters_allocated < budget
    liberation: tuple[int, int] | None = None
    swap_setup_cost = 0.0
    if not state.free_emitters:
        if can_allocate and not strategy.prefer_disconnect_over_allocate:
            swap_setup_cost = 0.0
        else:
            liberation = state.liberation_candidate()
            if liberation is not None:
                swap_setup_cost = liberation[0]
            elif can_allocate:
                # Nothing can be liberated; fall back to allocating.
                swap_setup_cost = 0.0
            elif strategy.strict_budget:
                raise InsufficientEmittersError(
                    "no free emitter, no emitter can be liberated and the budget "
                    f"of {budget} is exhausted"
                )
            else:
                swap_setup_cost = 0.0  # over-budget allocation, recorded by the state
    swap_cost = swap_setup_cost + deferred_edges

    if absorb_cost <= swap_cost and absorb_option is not None:
        _, chosen = absorb_option
        _, other_emitters = state.emitter_neighbors(chosen)
        for other in sorted(other_emitters):
            state.apply_disconnect(chosen, other, tag=tag)
        state.apply_absorb_dangling(chosen, photon, tag=tag)
        return

    if not state.free_emitters and liberation is not None and (
        strategy.prefer_disconnect_over_allocate or not can_allocate
    ):
        _liberate(state, liberation[1], tag)
    preferred = None
    for candidate in strategy.preferred_emitters:
        if candidate in state.free_emitters:
            preferred = candidate
            break
    state.apply_swap(photon, emitter=preferred, tag=tag)


# --------------------------------------------------------------------------- #
# Full reduction
# --------------------------------------------------------------------------- #


def greedy_reduce(
    target_graph: GraphState,
    processing_order: Sequence[Vertex] | None = None,
    strategy: GreedyReductionStrategy | None = None,
    tag: str = "",
    backend: str | None = None,
) -> ReductionSequence:
    """Reduce ``target_graph`` completely and return the reduction sequence.

    Args:
        target_graph: the photonic graph state to generate.
        processing_order: vertices in reversed-time processing order (the
            first vertex listed is the photon emitted *last* in the forward
            circuit).  Defaults to the reverse of the vertex order, which
            makes the forward emission order the natural vertex order — the
            baseline behaviour.
        strategy: greedy policy knobs (:class:`GreedyReductionStrategy`).
        tag: tag attached to every generated operation/gate.
        backend: working-graph representation (``None`` = process default):
            ``"packed"`` runs on the bitset fast path, ``"dense"`` on the
            networkx oracle.  Both yield bit-identical sequences.

    Returns:
        A complete :class:`repro.core.reduction.ReductionSequence` that can be
        turned into a verified forward circuit with ``.to_circuit()``.
    """
    if strategy is None:
        strategy = GreedyReductionStrategy()
    state = make_reduction_state(
        target_graph,
        emitter_budget=strategy.emitter_budget,
        strict_budget=strategy.strict_budget,
        backend=backend,
    )
    if processing_order is None:
        processing_order = list(reversed(target_graph.vertices()))
    else:
        processing_order = list(processing_order)
    if set(processing_order) != set(target_graph.vertices()) or len(
        processing_order
    ) != target_graph.num_vertices:
        raise ValueError("processing_order must be a permutation of the target vertices")

    for vertex in processing_order:
        photon = state.photon_of_vertex[vertex]
        if not state.photon_in_graph(photon):  # pragma: no cover - defensive
            continue
        reduce_photon(state, photon, strategy, tag)
        if strategy.free_isolated_eagerly:
            state.free_isolated_emitters(tag=tag)
    return state.finish(tag=tag)
