"""Qubit and gate datatypes of the emitter-photon circuit IR.

Two qubit species exist (paper §II.B):

* **emitter** qubits — matter qubits (quantum dots, colour centres, atoms)
  that are initialised in ``|0>``, support arbitrary single-qubit Cliffords,
  two-qubit gates *among themselves*, measurement and reset;
* **photon** qubits — flying qubits that do not exist before their emission;
  the first gate acting on a photon must be the emission, after which only
  single-qubit gates (and terminal measurements, not used here) are allowed.

Gates are immutable records; a circuit is a list of gates (see
:mod:`repro.circuit.circuit`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = [
    "QubitKind",
    "Qubit",
    "emitter",
    "photon",
    "GateName",
    "Gate",
    "SINGLE_QUBIT_GATES",
    "TWO_QUBIT_GATES",
    "EMISSION_GATE",
    "MEASUREMENT_GATES",
    "INVERSE_GATE",
]


class QubitKind(str, enum.Enum):
    """The two physical qubit species of the deterministic scheme."""

    EMITTER = "emitter"
    PHOTON = "photon"


@dataclass(frozen=True, order=True)
class Qubit:
    """A qubit identified by its species and an index within that species."""

    kind: QubitKind
    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"qubit index must be >= 0, got {self.index}")

    @property
    def is_emitter(self) -> bool:
        return self.kind is QubitKind.EMITTER

    @property
    def is_photon(self) -> bool:
        return self.kind is QubitKind.PHOTON

    def __repr__(self) -> str:
        prefix = "e" if self.is_emitter else "p"
        return f"{prefix}{self.index}"


def emitter(index: int) -> Qubit:
    """Shorthand constructor for an emitter qubit."""
    return Qubit(QubitKind.EMITTER, index)


def photon(index: int) -> Qubit:
    """Shorthand constructor for a photon qubit."""
    return Qubit(QubitKind.PHOTON, index)


class GateName(str, enum.Enum):
    """Names of all gates the compiler can emit."""

    H = "H"
    S = "S"
    SDG = "SDG"
    X = "X"
    Y = "Y"
    Z = "Z"
    SQRT_X = "SQRT_X"
    SQRT_X_DAG = "SQRT_X_DAG"
    CZ = "CZ"
    CNOT = "CNOT"
    EMIT = "EMIT"
    MEASURE_Z = "MEASURE_Z"
    RESET = "RESET"


SINGLE_QUBIT_GATES = frozenset(
    {
        GateName.H,
        GateName.S,
        GateName.SDG,
        GateName.X,
        GateName.Y,
        GateName.Z,
        GateName.SQRT_X,
        GateName.SQRT_X_DAG,
    }
)
TWO_QUBIT_GATES = frozenset({GateName.CZ, GateName.CNOT})
EMISSION_GATE = GateName.EMIT
MEASUREMENT_GATES = frozenset({GateName.MEASURE_Z, GateName.RESET})

INVERSE_GATE: dict[GateName, GateName] = {
    GateName.H: GateName.H,
    GateName.S: GateName.SDG,
    GateName.SDG: GateName.S,
    GateName.X: GateName.X,
    GateName.Y: GateName.Y,
    GateName.Z: GateName.Z,
    GateName.SQRT_X: GateName.SQRT_X_DAG,
    GateName.SQRT_X_DAG: GateName.SQRT_X,
    GateName.CZ: GateName.CZ,
    GateName.CNOT: GateName.CNOT,
}


@dataclass(frozen=True)
class Gate:
    """A single circuit operation.

    Attributes:
        name: the gate type.
        qubits: operands.  Convention: for ``CNOT`` the first operand is the
            control; for ``EMIT`` the first operand is the emitter and the
            second the (newly created) photon.
        conditional_paulis: Pauli feed-forward corrections applied when a
            ``MEASURE_Z`` yields outcome 1 — tuples ``(pauli_name, qubit)``
            where ``pauli_name`` is ``"X"``, ``"Y"`` or ``"Z"``.  Only
            meaningful for ``MEASURE_Z`` gates.
        tag: free-form annotation used by the compiler to attribute gates to
            pipeline stages (e.g. ``"stem"``, ``"subgraph:3"``, ``"lc"``).
    """

    name: GateName
    qubits: tuple[Qubit, ...]
    conditional_paulis: tuple[tuple[str, Qubit], ...] = field(default_factory=tuple)
    tag: str = ""

    def __post_init__(self) -> None:
        if not self.qubits:
            raise ValueError("a gate needs at least one operand")
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"duplicate operands in gate {self.name}: {self.qubits}")
        if self.name in SINGLE_QUBIT_GATES or self.name in MEASUREMENT_GATES:
            if len(self.qubits) != 1:
                raise ValueError(f"{self.name} expects exactly one operand")
        elif self.name in TWO_QUBIT_GATES or self.name is GateName.EMIT:
            if len(self.qubits) != 2:
                raise ValueError(f"{self.name} expects exactly two operands")
        if self.conditional_paulis and self.name is not GateName.MEASURE_Z:
            raise ValueError("conditional Paulis are only allowed on MEASURE_Z gates")
        for pauli_name, _ in self.conditional_paulis:
            if pauli_name not in ("X", "Y", "Z"):
                raise ValueError(f"invalid conditional Pauli {pauli_name!r}")

    # Convenience accessors -------------------------------------------------

    @property
    def is_emitter_emitter_gate(self) -> bool:
        """True for two-qubit gates acting on two emitters (the costly ones)."""
        return (
            self.name in TWO_QUBIT_GATES
            and all(q.is_emitter for q in self.qubits)
        )

    @property
    def is_emission(self) -> bool:
        return self.name is GateName.EMIT

    def involves(self, qubit: Qubit) -> bool:
        return qubit in self.qubits

    def __repr__(self) -> str:
        operands = ", ".join(repr(q) for q in self.qubits)
        suffix = f" [{self.tag}]" if self.tag else ""
        return f"{self.name.value}({operands}){suffix}"
