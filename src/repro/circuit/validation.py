"""Semantic validation of generation circuits.

The deterministic scheme promises that the circuit maps the all-``|0>``
initial state to ``|G>`` on the photons with every emitter returned to
``|0>``.  This module checks that promise *exactly* by replaying a circuit on
the stabilizer tableau of :mod:`repro.stabilizer` (including measurement
feed-forward corrections) and comparing the final state against the target
graph state.

It also provides the structural constraint re-check
(:func:`validate_circuit_constraints`) used by tests on hand-built gate lists
— the :class:`repro.circuit.circuit.Circuit` container already enforces those
rules on append, so compiled circuits pass it by construction.
"""

from __future__ import annotations

from repro.circuit.circuit import Circuit
from repro.circuit.gates import (
    GateName,
    MEASUREMENT_GATES,
    Qubit,
    SINGLE_QUBIT_GATES,
    TWO_QUBIT_GATES,
)
from repro.graphs.graph_state import GraphState
from repro.stabilizer.canonical import states_equal
from repro.stabilizer.tableau import StabilizerState

__all__ = [
    "CircuitValidationError",
    "validate_circuit_constraints",
    "simulate_circuit",
    "verify_circuit_generates",
]


class CircuitValidationError(RuntimeError):
    """Raised when a circuit violates the deterministic-scheme constraints."""


def validate_circuit_constraints(circuit: Circuit) -> None:
    """Re-check the structural rules of the deterministic scheme.

    Raises:
        CircuitValidationError: on the first violated rule.
    """
    emitted: set[int] = set()
    for position, gate in enumerate(circuit.gates):
        if gate.name in TWO_QUBIT_GATES:
            if not all(q.is_emitter for q in gate.qubits):
                raise CircuitValidationError(
                    f"gate {position} ({gate!r}) entangles a photon directly"
                )
        elif gate.name is GateName.EMIT:
            source, target = gate.qubits
            if not source.is_emitter or not target.is_photon:
                raise CircuitValidationError(
                    f"gate {position} ({gate!r}) is not an emitter->photon emission"
                )
            if target.index in emitted:
                raise CircuitValidationError(
                    f"gate {position} ({gate!r}) re-emits photon {target.index}"
                )
            emitted.add(target.index)
        elif gate.name in MEASUREMENT_GATES:
            if not gate.qubits[0].is_emitter:
                raise CircuitValidationError(
                    f"gate {position} ({gate!r}) measures or resets a photon"
                )
        elif gate.name in SINGLE_QUBIT_GATES:
            operand = gate.qubits[0]
            if operand.is_photon and operand.index not in emitted:
                raise CircuitValidationError(
                    f"gate {position} ({gate!r}) acts on an unemitted photon"
                )
        else:  # pragma: no cover - the GateName enum is closed
            raise CircuitValidationError(f"unknown gate {gate!r}")


def _tableau_index(qubit: Qubit, num_photons: int) -> int:
    """Map a circuit qubit to a tableau wire: photons first, then emitters."""
    if qubit.is_photon:
        return qubit.index
    return num_photons + qubit.index


def _apply_single(state: StabilizerState, name: GateName, wire: int) -> None:
    if name is GateName.H:
        state.h(wire)
    elif name is GateName.S:
        state.s(wire)
    elif name is GateName.SDG:
        state.sdg(wire)
    elif name is GateName.X:
        state.x_gate(wire)
    elif name is GateName.Y:
        state.y_gate(wire)
    elif name is GateName.Z:
        state.z_gate(wire)
    elif name is GateName.SQRT_X:
        state.sqrt_x(wire)
    elif name is GateName.SQRT_X_DAG:
        state.sqrt_x_dag(wire)
    else:  # pragma: no cover - guarded by callers
        raise ValueError(f"{name} is not a single-qubit gate")


def simulate_circuit(
    circuit: Circuit, seed: int | None = 0, backend: str | None = None
) -> StabilizerState:
    """Replay ``circuit`` on a stabilizer tableau starting from all ``|0>``.

    Photon ``p`` occupies tableau wire ``p``; emitter ``e`` occupies wire
    ``num_photons + e``.  Measurement outcomes are sampled (deterministically
    for the default seed) and the associated conditional Pauli corrections are
    applied, so the returned state is the state the hardware would produce.
    ``backend`` selects the tableau storage backend (``None`` = process
    default; both backends simulate bit-identically).
    """
    num_wires = circuit.num_photons + circuit.num_emitters
    if num_wires == 0:
        raise ValueError("cannot simulate a circuit with no qubits")
    state = StabilizerState(num_wires, seed=seed, backend=backend)
    np_ = circuit.num_photons
    for gate in circuit.gates:
        if gate.name in SINGLE_QUBIT_GATES:
            _apply_single(state, gate.name, _tableau_index(gate.qubits[0], np_))
        elif gate.name is GateName.CZ:
            state.cz(
                _tableau_index(gate.qubits[0], np_),
                _tableau_index(gate.qubits[1], np_),
            )
        elif gate.name is GateName.CNOT:
            state.cnot(
                _tableau_index(gate.qubits[0], np_),
                _tableau_index(gate.qubits[1], np_),
            )
        elif gate.name is GateName.EMIT:
            state.cnot(
                _tableau_index(gate.qubits[0], np_),
                _tableau_index(gate.qubits[1], np_),
            )
        elif gate.name is GateName.MEASURE_Z:
            wire = _tableau_index(gate.qubits[0], np_)
            outcome = state.measure_z(wire)
            if outcome == 1:
                for pauli_name, target in gate.conditional_paulis:
                    target_wire = _tableau_index(target, np_)
                    if pauli_name == "X":
                        state.x_gate(target_wire)
                    elif pauli_name == "Y":
                        state.y_gate(target_wire)
                    else:
                        state.z_gate(target_wire)
                # Return the measured emitter to |0>.
                state.x_gate(wire)
        elif gate.name is GateName.RESET:
            state.reset(_tableau_index(gate.qubits[0], np_))
        else:  # pragma: no cover - the GateName enum is closed
            raise ValueError(f"cannot simulate gate {gate!r}")
    return state


def verify_circuit_generates(
    circuit: Circuit,
    target_graph: GraphState,
    photon_of_vertex: dict | None = None,
    num_trials: int = 2,
    backend: str | None = None,
) -> bool:
    """Check that ``circuit`` produces ``|target_graph>`` on its photons.

    Args:
        circuit: the generation circuit.
        target_graph: the target graph state; its vertices are mapped onto
            photon indices via ``photon_of_vertex`` (identity by default).
        photon_of_vertex: mapping ``graph vertex -> photon index``.
        num_trials: how many independent simulations to run (measurement
            outcomes are random; a correct circuit is deterministic *because*
            of its feed-forward corrections, so all trials must succeed).
        backend: tableau/GF(2) backend for the simulations and the canonical
            state comparison (``None`` = process default).

    Returns:
        True when, in every trial, the simulated final state equals
        ``|target_graph>`` on the photon wires tensored with ``|0>`` on every
        emitter wire, exactly.
    """
    validate_circuit_constraints(circuit)
    if photon_of_vertex is None:
        vertices = target_graph.vertices()
        photon_of_vertex = {v: i for i, v in enumerate(vertices)}
    if len(photon_of_vertex) != circuit.num_photons:
        raise ValueError(
            "photon_of_vertex must map every graph vertex to a distinct photon "
            f"({len(photon_of_vertex)} mappings for {circuit.num_photons} photons)"
        )

    num_wires = circuit.num_photons + circuit.num_emitters
    reference = StabilizerState(num_wires, backend=backend)
    for wire in range(circuit.num_photons):
        reference.h(wire)
    for u, v in target_graph.edges():
        reference.cz(photon_of_vertex[u], photon_of_vertex[v])

    for trial in range(max(1, num_trials)):
        final = simulate_circuit(circuit, seed=trial, backend=backend)
        if not states_equal(final, reference, backend=backend):
            return False
    return True
