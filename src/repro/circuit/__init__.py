"""Quantum-circuit intermediate representation for emitter-photon circuits.

The IR is deliberately small: the deterministic emission scheme only ever
needs

* single-qubit Cliffords (on emitters or on already-emitted photons),
* two-qubit Cliffords *between emitters* (CZ / CNOT),
* the emission operation (an emitter→photon CNOT that creates the photon),
* Z-basis measurements of emitters with Pauli feed-forward, and resets.

Modules:

* :mod:`repro.circuit.gates` — qubit and gate datatypes plus the gate tables.
* :mod:`repro.circuit.circuit` — the :class:`Circuit` container with
  deterministic-scheme constraint checking.
* :mod:`repro.circuit.timing` — hardware-duration-aware ASAP/ALAP scheduling,
  emitter-usage curves.
* :mod:`repro.circuit.metrics` — circuit cost metrics used in the evaluation.
* :mod:`repro.circuit.validation` — stabilizer-simulation back-end used to
  verify that a circuit generates its target graph state exactly.
"""

from repro.circuit.gates import (
    EMISSION_GATE,
    MEASUREMENT_GATES,
    SINGLE_QUBIT_GATES,
    TWO_QUBIT_GATES,
    Gate,
    GateName,
    Qubit,
    QubitKind,
    emitter,
    photon,
)
from repro.circuit.circuit import Circuit
from repro.circuit.timing import GateDurations, Schedule, schedule_circuit
from repro.circuit.metrics import CircuitMetrics, compute_metrics
from repro.circuit.validation import (
    CircuitValidationError,
    simulate_circuit,
    validate_circuit_constraints,
    verify_circuit_generates,
)

__all__ = [
    "EMISSION_GATE",
    "MEASUREMENT_GATES",
    "SINGLE_QUBIT_GATES",
    "TWO_QUBIT_GATES",
    "Gate",
    "GateName",
    "Qubit",
    "QubitKind",
    "emitter",
    "photon",
    "Circuit",
    "GateDurations",
    "Schedule",
    "schedule_circuit",
    "CircuitMetrics",
    "compute_metrics",
    "CircuitValidationError",
    "simulate_circuit",
    "validate_circuit_constraints",
    "verify_circuit_generates",
]
