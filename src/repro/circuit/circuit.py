"""The :class:`Circuit` container.

A circuit is an ordered list of :class:`repro.circuit.gates.Gate` objects over
a fixed set of emitter qubits and photon qubits.  The container enforces the
structural constraints of the deterministic emission scheme *as gates are
appended*, so a circuit object that exists is always well formed:

1. two-qubit gates act on two emitters only (photon-photon and
   emitter-photon entangling gates other than the emission are rejected);
2. the first gate touching a photon must be its emission, and a photon can be
   emitted only once;
3. measurements and resets act on emitters only (photons fly away — the
   generation circuit never measures them).

The container is purely structural; timing, metrics and semantic verification
live in :mod:`repro.circuit.timing`, :mod:`repro.circuit.metrics` and
:mod:`repro.circuit.validation`.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.circuit.gates import (
    Gate,
    GateName,
    MEASUREMENT_GATES,
    Qubit,
    SINGLE_QUBIT_GATES,
    TWO_QUBIT_GATES,
    emitter,
    photon,
)

__all__ = ["Circuit"]


class Circuit:
    """An emitter-photon generation circuit."""

    def __init__(self, num_emitters: int, num_photons: int):
        if num_emitters < 0:
            raise ValueError(f"num_emitters must be >= 0, got {num_emitters}")
        if num_photons < 0:
            raise ValueError(f"num_photons must be >= 0, got {num_photons}")
        self.num_emitters = int(num_emitters)
        self.num_photons = int(num_photons)
        self._gates: list[Gate] = []
        self._emitted_photons: set[int] = set()

    # ------------------------------------------------------------------ #
    # Gate appending
    # ------------------------------------------------------------------ #

    def _check_qubit(self, qubit: Qubit) -> None:
        if qubit.is_emitter and qubit.index >= self.num_emitters:
            raise ValueError(
                f"emitter index {qubit.index} out of range "
                f"(circuit has {self.num_emitters} emitters)"
            )
        if qubit.is_photon and qubit.index >= self.num_photons:
            raise ValueError(
                f"photon index {qubit.index} out of range "
                f"(circuit has {self.num_photons} photons)"
            )

    def append(self, gate: Gate) -> None:
        """Append ``gate`` after validating the deterministic-scheme rules."""
        for qubit in gate.qubits:
            self._check_qubit(qubit)
        for _, qubit in gate.conditional_paulis:
            self._check_qubit(qubit)

        if gate.name in TWO_QUBIT_GATES:
            if not all(q.is_emitter for q in gate.qubits):
                raise ValueError(
                    "two-qubit gates are only allowed between emitters "
                    f"(got {gate!r}); photon-photon interactions break determinism"
                )
        elif gate.name is GateName.EMIT:
            source, target = gate.qubits
            if not source.is_emitter or not target.is_photon:
                raise ValueError(
                    f"EMIT expects (emitter, photon) operands, got {gate!r}"
                )
            if target.index in self._emitted_photons:
                raise ValueError(f"photon {target!r} has already been emitted")
        elif gate.name in MEASUREMENT_GATES:
            if not gate.qubits[0].is_emitter:
                raise ValueError(
                    f"{gate.name.value} is only allowed on emitters, got {gate!r}"
                )
        elif gate.name in SINGLE_QUBIT_GATES:
            operand = gate.qubits[0]
            if operand.is_photon and operand.index not in self._emitted_photons:
                raise ValueError(
                    f"photon {operand!r} receives a gate before its emission"
                )
        # Conditional corrections may only target qubits that already exist.
        for _, qubit in gate.conditional_paulis:
            if qubit.is_photon and qubit.index not in self._emitted_photons:
                raise ValueError(
                    f"conditional correction targets unemitted photon {qubit!r}"
                )

        self._gates.append(gate)
        if gate.name is GateName.EMIT:
            self._emitted_photons.add(gate.qubits[1].index)

    # Convenience builders --------------------------------------------------

    def add_single(self, name: GateName, qubit: Qubit, tag: str = "") -> None:
        """Append a single-qubit gate."""
        self.append(Gate(name=name, qubits=(qubit,), tag=tag))

    def add_cz(self, emitter_a: int, emitter_b: int, tag: str = "") -> None:
        """Append an emitter-emitter CZ gate."""
        self.append(
            Gate(name=GateName.CZ, qubits=(emitter(emitter_a), emitter(emitter_b)), tag=tag)
        )

    def add_cnot(self, control_emitter: int, target_emitter: int, tag: str = "") -> None:
        """Append an emitter-emitter CNOT gate."""
        self.append(
            Gate(
                name=GateName.CNOT,
                qubits=(emitter(control_emitter), emitter(target_emitter)),
                tag=tag,
            )
        )

    def add_emission(self, emitter_index: int, photon_index: int, tag: str = "") -> None:
        """Append the emission of ``photon_index`` from ``emitter_index``."""
        self.append(
            Gate(
                name=GateName.EMIT,
                qubits=(emitter(emitter_index), photon(photon_index)),
                tag=tag,
            )
        )

    def add_measure(
        self,
        emitter_index: int,
        conditional_paulis: Iterable[tuple[str, Qubit]] = (),
        tag: str = "",
    ) -> None:
        """Append a Z measurement of an emitter with optional feed-forward."""
        self.append(
            Gate(
                name=GateName.MEASURE_Z,
                qubits=(emitter(emitter_index),),
                conditional_paulis=tuple(conditional_paulis),
                tag=tag,
            )
        )

    def add_reset(self, emitter_index: int, tag: str = "") -> None:
        """Append a reset of an emitter to ``|0>``."""
        self.append(Gate(name=GateName.RESET, qubits=(emitter(emitter_index),), tag=tag))

    def extend(self, gates: Iterable[Gate]) -> None:
        """Append every gate of ``gates`` in order (validated one by one)."""
        for gate in gates:
            self.append(gate)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @property
    def gates(self) -> list[Gate]:
        """The gate list (a copy; appending to it does not modify the circuit)."""
        return list(self._gates)

    @property
    def num_gates(self) -> int:
        return len(self._gates)

    @property
    def emitted_photons(self) -> set[int]:
        """Indices of photons that have an emission gate."""
        return set(self._emitted_photons)

    def gates_on(self, qubit: Qubit) -> list[Gate]:
        """All gates whose operands include ``qubit`` (conditions excluded)."""
        return [g for g in self._gates if g.involves(qubit)]

    def emission_gate_of(self, photon_index: int) -> Gate | None:
        """The emission gate of a photon, or ``None`` if it was never emitted."""
        target = photon(photon_index)
        for gate in self._gates:
            if gate.name is GateName.EMIT and gate.qubits[1] == target:
                return gate
        return None

    def count(self, name: GateName) -> int:
        """Number of gates with the given name."""
        return sum(1 for g in self._gates if g.name is name)

    def num_emitter_emitter_gates(self) -> int:
        """Number of two-qubit gates between emitters (the paper's #CNOT metric)."""
        return sum(1 for g in self._gates if g.is_emitter_emitter_gate)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __len__(self) -> int:
        return len(self._gates)

    def __repr__(self) -> str:
        return (
            f"Circuit(num_emitters={self.num_emitters}, "
            f"num_photons={self.num_photons}, num_gates={self.num_gates})"
        )

    # ------------------------------------------------------------------ #
    # Composition
    # ------------------------------------------------------------------ #

    def copy(self) -> "Circuit":
        clone = Circuit(self.num_emitters, self.num_photons)
        clone._gates = list(self._gates)
        clone._emitted_photons = set(self._emitted_photons)
        return clone

    @staticmethod
    def concatenate(circuits: Iterable["Circuit"]) -> "Circuit":
        """Concatenate circuits that share the same qubit registries.

        All inputs must have identical ``num_emitters`` / ``num_photons``;
        gates are appended in order.  Used by the scheduler when stitching
        subgraph circuits back together.
        """
        circuits = list(circuits)
        if not circuits:
            raise ValueError("cannot concatenate an empty collection of circuits")
        first = circuits[0]
        merged = Circuit(first.num_emitters, first.num_photons)
        for circ in circuits:
            if (
                circ.num_emitters != first.num_emitters
                or circ.num_photons != first.num_photons
            ):
                raise ValueError("circuits must share the same qubit registries")
            for gate in circ:
                merged.append(gate)
        return merged

    def pretty(self, max_gates: int | None = None) -> str:
        """A compact human-readable gate listing (for examples and debugging)."""
        lines = []
        gates = self._gates if max_gates is None else self._gates[:max_gates]
        for i, gate in enumerate(gates):
            lines.append(f"{i:4d}: {gate!r}")
        if max_gates is not None and len(self._gates) > max_gates:
            lines.append(f"... ({len(self._gates) - max_gates} more gates)")
        return "\n".join(lines)
