"""Hardware-duration-aware circuit scheduling.

The deterministic scheme mixes operations with very different physical
durations: an emitter-emitter CNOT on quantum dots takes ``tau_QD`` (about a
nanosecond), a cavity-enhanced photon emission only ``0.1 tau_QD``, and
single-qubit rotations are faster still.  A generation circuit therefore has a
*makespan* that depends on how its gates are packed onto the timeline, not
just on its gate count — which is exactly the quantity the paper optimises in
Figures 10(d)-(f).

This module provides a dependency-list scheduler with two policies:

* **ASAP** (as soon as possible) — every gate starts the moment all of its
  operands are free.  This models the behaviour of a compiler that does not
  reason about photon loss (the baseline).
* **ALAP** (as late as possible) — gates are pushed towards the end of the
  circuit without increasing the makespan, which delays photon emissions and
  therefore reduces the accumulated loss (the paper adopts Qiskit's ALAP
  notion for its scheduling stage).

The schedule also exposes the emitter-usage curve of Figure 5 (how many
emitters are "in use" at any time), which drives the Tetris packing of
:mod:`repro.core.scheduler`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.circuit import Circuit
from repro.circuit.gates import (
    Gate,
    GateName,
    MEASUREMENT_GATES,
    Qubit,
    SINGLE_QUBIT_GATES,
)

__all__ = ["GateDurations", "Schedule", "schedule_circuit", "emitter_usage_curve"]


@dataclass(frozen=True)
class GateDurations:
    """Gate durations in units of the emitter-emitter gate time ``tau``.

    Defaults follow the quantum-dot model of the paper: the emitter-emitter
    CNOT/CZ defines the unit (``tau_QD = 2 pi / J``), photon emission takes a
    tenth of it (cavity-enhanced emission), single-qubit rotations and
    measurements are sub-dominant but non-zero.
    """

    emitter_emitter_gate: float = 1.0
    emission: float = 0.1
    emitter_single_qubit: float = 0.05
    photon_single_qubit: float = 0.01
    measurement: float = 0.1
    reset: float = 0.05

    def __post_init__(self) -> None:
        for name, value in (
            ("emitter_emitter_gate", self.emitter_emitter_gate),
            ("emission", self.emission),
            ("emitter_single_qubit", self.emitter_single_qubit),
            ("photon_single_qubit", self.photon_single_qubit),
            ("measurement", self.measurement),
            ("reset", self.reset),
        ):
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")

    def duration_of(self, gate: Gate) -> float:
        """The wall-clock duration of ``gate``."""
        if gate.name in (GateName.CZ, GateName.CNOT):
            return self.emitter_emitter_gate
        if gate.name is GateName.EMIT:
            return self.emission
        if gate.name is GateName.MEASURE_Z:
            return self.measurement
        if gate.name is GateName.RESET:
            return self.reset
        if gate.name in SINGLE_QUBIT_GATES:
            operand = gate.qubits[0]
            if operand.is_photon:
                return self.photon_single_qubit
            return self.emitter_single_qubit
        raise ValueError(f"no duration defined for gate {gate!r}")


@dataclass
class Schedule:
    """The result of scheduling a circuit: start/end times for every gate."""

    circuit: Circuit
    durations: GateDurations
    start_times: list[float]
    end_times: list[float]
    policy: str

    @property
    def makespan(self) -> float:
        """Total circuit duration (0 for an empty circuit)."""
        return max(self.end_times, default=0.0)

    def emission_times(self) -> dict[int, float]:
        """Map ``photon index -> time at which its emission completes``."""
        times: dict[int, float] = {}
        for gate, end in zip(self.circuit.gates, self.end_times):
            if gate.name is GateName.EMIT:
                times[gate.qubits[1].index] = end
        return times

    def photon_exposure_times(self) -> dict[int, float]:
        """Per-photon time between emission and the end of the circuit.

        This is the window during which the photon accumulates loss
        (``M_circ_end - M_emit(p)`` in the paper's T_loss definition).
        """
        makespan = self.makespan
        return {p: makespan - t for p, t in self.emission_times().items()}

    def average_photon_loss_duration(self) -> float:
        """The paper's ``T_loss``: average photon exposure time."""
        exposures = self.photon_exposure_times()
        if not exposures:
            return 0.0
        return sum(exposures.values()) / len(exposures)

    def emitter_active_intervals(self) -> dict[int, list[tuple[float, float]]]:
        """Per-emitter time intervals during which the emitter is in use.

        An emitter becomes active when the first gate of a usage segment
        starts and becomes free again when a ``MEASURE_Z``/``RESET`` on it
        completes (or at the circuit end).  Consecutive segments are kept
        separate so reuse shows up as distinct intervals.
        """
        intervals: dict[int, list[tuple[float, float]]] = {
            e: [] for e in range(self.circuit.num_emitters)
        }
        open_start: dict[int, float | None] = {
            e: None for e in range(self.circuit.num_emitters)
        }
        order = sorted(range(len(self.start_times)), key=lambda i: self.start_times[i])
        gates = self.circuit.gates
        for i in order:
            gate = gates[i]
            for qubit in gate.qubits:
                if not qubit.is_emitter:
                    continue
                e = qubit.index
                if open_start[e] is None:
                    open_start[e] = self.start_times[i]
                if gate.name in MEASUREMENT_GATES:
                    intervals[e].append((open_start[e], self.end_times[i]))
                    open_start[e] = None
        makespan = self.makespan
        for e, start in open_start.items():
            if start is not None:
                intervals[e].append((start, makespan))
        return intervals

    def emitter_usage_curve(self) -> list[tuple[float, int]]:
        """Step curve ``[(time, #active emitters), ...]`` sorted by time."""
        return emitter_usage_curve(self)

    def max_emitters_in_use(self) -> int:
        """Peak of the emitter-usage curve."""
        curve = self.emitter_usage_curve()
        return max((count for _, count in curve), default=0)


def _qubit_key(qubit: Qubit) -> tuple[str, int]:
    return (qubit.kind.value, qubit.index)


def schedule_circuit(
    circuit: Circuit,
    durations: GateDurations | None = None,
    policy: str = "asap",
) -> Schedule:
    """Schedule ``circuit`` under the given gate durations.

    Dependencies are purely structural: two gates conflict when they share an
    operand, and the gate order of the circuit is preserved for conflicting
    gates.  Non-conflicting gates run in parallel.

    Args:
        circuit: the circuit to schedule.
        durations: gate durations (defaults to the quantum-dot values).
        policy: ``"asap"`` or ``"alap"``.

    Returns:
        A :class:`Schedule`.
    """
    if durations is None:
        durations = GateDurations()
    policy = policy.lower()
    if policy not in ("asap", "alap"):
        raise ValueError(f"policy must be 'asap' or 'alap', got {policy!r}")

    gates = circuit.gates
    n = len(gates)
    gate_durations = [durations.duration_of(g) for g in gates]

    # ASAP pass.
    qubit_ready: dict[tuple[str, int], float] = {}
    asap_start = [0.0] * n
    for i, gate in enumerate(gates):
        operands = list(gate.qubits) + [q for _, q in gate.conditional_paulis]
        start = max((qubit_ready.get(_qubit_key(q), 0.0) for q in operands), default=0.0)
        asap_start[i] = start
        end = start + gate_durations[i]
        for q in operands:
            qubit_ready[_qubit_key(q)] = end
    asap_end = [s + d for s, d in zip(asap_start, gate_durations)]
    makespan = max(asap_end, default=0.0)

    if policy == "asap":
        return Schedule(
            circuit=circuit,
            durations=durations,
            start_times=asap_start,
            end_times=asap_end,
            policy="asap",
        )

    # ALAP pass: schedule the reversed circuit ASAP, then mirror the times.
    qubit_ready = {}
    alap_end = [0.0] * n
    for i in range(n - 1, -1, -1):
        gate = gates[i]
        operands = list(gate.qubits) + [q for _, q in gate.conditional_paulis]
        latest = min(
            (qubit_ready.get(_qubit_key(q), makespan) for q in operands),
            default=makespan,
        )
        end = latest
        start = end - gate_durations[i]
        alap_end[i] = end
        for q in operands:
            qubit_ready[_qubit_key(q)] = start
    alap_start = [e - d for e, d in zip(alap_end, gate_durations)]
    shift = -min(alap_start, default=0.0)
    if shift > 0:
        alap_start = [s + shift for s in alap_start]
        alap_end = [e + shift for e in alap_end]
    return Schedule(
        circuit=circuit,
        durations=durations,
        start_times=alap_start,
        end_times=alap_end,
        policy="alap",
    )


def emitter_usage_curve(schedule: Schedule) -> list[tuple[float, int]]:
    """Step curve of the number of simultaneously active emitters.

    The curve is a list of ``(time, count)`` points: between one point's time
    and the next, exactly ``count`` emitters are active.  The final point has
    count 0 at the makespan.
    """
    events: list[tuple[float, int]] = []
    for intervals in schedule.emitter_active_intervals().values():
        for start, end in intervals:
            if end > start:
                events.append((start, +1))
                events.append((end, -1))
    if not events:
        return [(0.0, 0)]
    events.sort()
    curve: list[tuple[float, int]] = []
    active = 0
    index = 0
    while index < len(events):
        time = events[index][0]
        while index < len(events) and events[index][0] == time:
            active += events[index][1]
            index += 1
        curve.append((time, active))
    return curve
