"""Circuit cost metrics used throughout the evaluation.

The paper compares compilers on three hardware-motivated quantities:

* ``#emitter-emitter CNOT`` — the number of two-qubit gates between emitters,
  the slowest and lowest-fidelity operation of the platform (Fig. 10 a-c);
* ``circuit duration`` — the scheduled makespan in units of ``tau_QD``
  (Fig. 10 d-f);
* ``photon loss`` — the probability that at least one photon of the final
  state is lost, driven by how long each photon waits between its emission
  and the end of the circuit (Fig. 11 a).

:func:`compute_metrics` bundles all of them (plus auxiliary counters) given a
circuit, a scheduling policy and a hardware model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.circuit import Circuit
from repro.circuit.gates import GateName
from repro.circuit.timing import GateDurations, Schedule, schedule_circuit

__all__ = ["CircuitMetrics", "compute_metrics"]


@dataclass(frozen=True)
class CircuitMetrics:
    """A bundle of cost metrics for one generation circuit."""

    num_emitter_emitter_cnots: int
    num_emissions: int
    num_single_qubit_gates: int
    num_measurements: int
    num_gates: int
    duration: float
    average_photon_loss_duration: float
    total_photon_exposure: float
    max_emitters_in_use: int
    num_emitters: int
    num_photons: int
    photon_survival_probability: float | None = None
    photon_loss_probability: float | None = None

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view (used by the evaluation harness and the CLI)."""
        return {
            "num_emitter_emitter_cnots": self.num_emitter_emitter_cnots,
            "num_emissions": self.num_emissions,
            "num_single_qubit_gates": self.num_single_qubit_gates,
            "num_measurements": self.num_measurements,
            "num_gates": self.num_gates,
            "duration": self.duration,
            "average_photon_loss_duration": self.average_photon_loss_duration,
            "total_photon_exposure": self.total_photon_exposure,
            "max_emitters_in_use": self.max_emitters_in_use,
            "num_emitters": self.num_emitters,
            "num_photons": self.num_photons,
            "photon_survival_probability": self.photon_survival_probability,
            "photon_loss_probability": self.photon_loss_probability,
        }


def compute_metrics(
    circuit: Circuit,
    durations: GateDurations | None = None,
    policy: str = "asap",
    loss_model=None,
    schedule: Schedule | None = None,
) -> CircuitMetrics:
    """Compute the :class:`CircuitMetrics` of ``circuit``.

    Args:
        circuit: circuit to analyse.
        durations: gate durations; defaults to the quantum-dot values.
        policy: scheduling policy used to derive timing-based metrics.
        loss_model: optional :class:`repro.hardware.loss.PhotonLossModel`;
            when given, the photon survival / loss probabilities of the final
            state are filled in.
        schedule: pre-computed schedule (overrides ``durations``/``policy``).
    """
    if schedule is None:
        schedule = schedule_circuit(circuit, durations=durations, policy=policy)

    single_qubit = sum(
        circuit.count(name)
        for name in (
            GateName.H,
            GateName.S,
            GateName.SDG,
            GateName.X,
            GateName.Y,
            GateName.Z,
            GateName.SQRT_X,
            GateName.SQRT_X_DAG,
        )
    )
    exposures = schedule.photon_exposure_times()
    survival = None
    loss = None
    if loss_model is not None:
        survival = loss_model.state_survival_probability(exposures)
        loss = 1.0 - survival

    return CircuitMetrics(
        num_emitter_emitter_cnots=circuit.num_emitter_emitter_gates(),
        num_emissions=circuit.count(GateName.EMIT),
        num_single_qubit_gates=single_qubit,
        num_measurements=circuit.count(GateName.MEASURE_Z) + circuit.count(GateName.RESET),
        num_gates=circuit.num_gates,
        duration=schedule.makespan,
        average_photon_loss_duration=schedule.average_photon_loss_duration(),
        total_photon_exposure=sum(exposures.values()),
        max_emitters_in_use=schedule.max_emitters_in_use(),
        num_emitters=circuit.num_emitters,
        num_photons=circuit.num_photons,
        photon_survival_probability=survival,
        photon_loss_probability=loss,
    )
