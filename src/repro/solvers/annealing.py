"""A small simulated-annealing engine.

Used by the combined local-complementation + partition search of
:mod:`repro.core.partition` when the instance is too large for the exact
branch-and-bound model.  The engine is deliberately generic (state, neighbour
function, energy function) so it can be reused and property-tested on simple
synthetic problems.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, TypeVar

import numpy as np

from repro.utils.misc import check_positive, make_rng

__all__ = ["AnnealingResult", "simulated_annealing"]

State = TypeVar("State")


@dataclass
class AnnealingResult:
    """Best state found by :func:`simulated_annealing` and bookkeeping."""

    best_state: object
    best_energy: float
    final_energy: float
    iterations: int
    accepted_moves: int

    @property
    def acceptance_rate(self) -> float:
        if self.iterations == 0:
            return 0.0
        return self.accepted_moves / self.iterations


def simulated_annealing(
    initial_state: State,
    energy: Callable[[State], float],
    neighbor: Callable[[State, np.random.Generator], State],
    num_iterations: int = 1000,
    initial_temperature: float = 1.0,
    final_temperature: float = 1e-3,
    seed: int | np.random.Generator | None = None,
) -> AnnealingResult:
    """Minimise ``energy`` starting from ``initial_state``.

    Args:
        initial_state: starting point; never mutated (``neighbor`` must return
            a new state).
        energy: objective to minimise.
        neighbor: proposal function ``(state, rng) -> new state``.
        num_iterations: number of proposal steps.
        initial_temperature: starting temperature of the geometric schedule.
        final_temperature: temperature at the last iteration.
        seed: RNG seed or generator.

    Returns:
        An :class:`AnnealingResult` with the best state seen over the run.
    """
    check_positive("num_iterations", num_iterations)
    check_positive("initial_temperature", initial_temperature)
    check_positive("final_temperature", final_temperature)
    if final_temperature > initial_temperature:
        raise ValueError("final_temperature must not exceed initial_temperature")
    rng = make_rng(seed)

    current = initial_state
    current_energy = energy(current)
    best = current
    best_energy = current_energy
    accepted = 0

    if num_iterations == 1:
        cooling = 1.0
    else:
        cooling = (final_temperature / initial_temperature) ** (1.0 / (num_iterations - 1))
    temperature = initial_temperature

    for _ in range(num_iterations):
        candidate = neighbor(current, rng)
        candidate_energy = energy(candidate)
        delta = candidate_energy - current_energy
        if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-12)):
            current = candidate
            current_energy = candidate_energy
            accepted += 1
            if current_energy < best_energy:
                best = current
                best_energy = current_energy
        temperature *= cooling

    return AnnealingResult(
        best_state=best,
        best_energy=best_energy,
        final_energy=current_energy,
        iterations=num_iterations,
        accepted_moves=accepted,
    )
