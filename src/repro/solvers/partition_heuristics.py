"""Partition heuristics: balanced greedy growth and Kernighan–Lin refinement.

The partitioning stage needs blocks of bounded size (``g_max``) with as few
edges between blocks as possible.  The heuristics here are deliberately
classic:

* :func:`balanced_greedy_partition` grows blocks by BFS from high-degree
  seeds, always absorbing the frontier vertex with the most neighbours
  already inside the block (a locality-preserving greedy);
* :func:`kernighan_lin_refinement` then performs single-vertex relocation and
  pairwise swap passes that strictly reduce the cut while respecting the
  block-size cap.

Both operate on :class:`repro.graphs.graph_state.GraphState` and treat vertex
labels opaquely.  Internally the neighbour counting runs on the graph's
cached packed adjacency rows (``popcount(row & block_mask)`` instead of
per-neighbour dict lookups), which keeps the move-evaluation loops cheap on
multi-hundred-vertex graphs; the gains are exact integers, so the produced
partitions are identical to the historical set-based implementation.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

from repro.graphs.graph_state import GraphState
from repro.utils.misc import make_rng

__all__ = [
    "cut_size",
    "partition_blocks_valid",
    "balanced_greedy_partition",
    "kernighan_lin_refinement",
]

Vertex = Hashable


def cut_size(graph: GraphState, blocks: Sequence[Iterable[Vertex]]) -> int:
    """Number of edges whose endpoints lie in different blocks."""
    return len(graph.cut_edges(blocks))


def partition_blocks_valid(
    graph: GraphState, blocks: Sequence[Iterable[Vertex]], max_block_size: int
) -> bool:
    """Check that ``blocks`` is a partition of the vertices with bounded size."""
    seen: set[Vertex] = set()
    for block in blocks:
        block = list(block)
        if len(block) == 0 or len(block) > max_block_size:
            return False
        for v in block:
            if v in seen or not graph.has_vertex(v):
                return False
            seen.add(v)
    return seen == set(graph.vertices())


def balanced_greedy_partition(
    graph: GraphState,
    max_block_size: int,
    seed: int | None = None,
) -> list[list[Vertex]]:
    """Grow blocks of at most ``max_block_size`` vertices by greedy BFS.

    Each block is seeded with the highest-degree unassigned vertex and grown
    by repeatedly adding the unassigned vertex with the largest number of
    neighbours already inside the block (ties broken by degree, then label
    order for determinism).
    """
    if max_block_size <= 0:
        raise ValueError(f"max_block_size must be positive, got {max_block_size}")
    rng = make_rng(seed)
    packed = graph.packed_adjacency()
    index = packed.index
    rows = packed.rows
    unassigned = set(graph.vertices())
    blocks: list[list[Vertex]] = []

    def sort_key(v: Vertex) -> tuple[int, str]:
        """Order vertices by descending degree, ties by repr."""
        return (-graph.degree(v), repr(v))

    while unassigned:
        seed_vertex = min(unassigned, key=sort_key)
        block = [seed_vertex]
        block_mask = 1 << index[seed_vertex]
        unassigned.discard(seed_vertex)
        while len(block) < max_block_size and unassigned:
            best_vertex = None
            best_score: tuple[int, int, str] | None = None
            for v in unassigned:
                internal = (rows[index[v]] & block_mask).bit_count()
                if internal == 0:
                    continue
                score = (-internal, -graph.degree(v), repr(v))
                if best_score is None or score < best_score:
                    best_score = score
                    best_vertex = v
            if best_vertex is None:
                break
            block.append(best_vertex)
            block_mask |= 1 << index[best_vertex]
            unassigned.discard(best_vertex)
        blocks.append(block)
    # ``rng`` is kept for interface symmetry with the other heuristics even
    # though the greedy itself is deterministic.
    del rng
    return blocks


def _block_of_map(blocks: Sequence[Sequence[Vertex]]) -> dict[Vertex, int]:
    mapping: dict[Vertex, int] = {}
    for index, block in enumerate(blocks):
        for v in block:
            mapping[v] = index
    return mapping


def kernighan_lin_refinement(
    graph: GraphState,
    blocks: Sequence[Sequence[Vertex]],
    max_block_size: int,
    max_passes: int = 10,
) -> list[list[Vertex]]:
    """Improve a partition by relocations and swaps that reduce the cut.

    A pass alternates two move types until neither improves the cut:

    * relocate a single vertex to another (non-full) block;
    * swap two vertices between blocks.

    Only strictly improving moves are applied, so the refinement terminates
    and never degrades the initial partition.
    """
    if max_block_size <= 0:
        raise ValueError(f"max_block_size must be positive, got {max_block_size}")
    current = [list(block) for block in blocks]
    if not partition_blocks_valid(graph, current, max_block_size):
        raise ValueError("initial blocks are not a valid bounded partition")
    packed = graph.packed_adjacency()
    index = packed.index
    rows = packed.rows

    def block_masks() -> list[int]:
        return [
            sum(1 << index[v] for v in block) for block in current
        ]

    for _ in range(max_passes):
        improved = False
        block_of = _block_of_map(current)
        masks = block_masks()

        # Single-vertex relocations.  The move gain is the exact cut
        # reduction: #neighbours in the destination minus #neighbours in the
        # origin, both popcounts of the vertex row against the block masks.
        for vertex in graph.vertices():
            origin = block_of[vertex]
            if len(current[origin]) == 1:
                continue  # never empty a block
            row = rows[index[vertex]]
            best_gain = 0
            best_destination = None
            for destination in range(len(current)):
                if destination == origin or len(current[destination]) >= max_block_size:
                    continue
                gain = (row & masks[destination]).bit_count() - (
                    row & masks[origin]
                ).bit_count()
                if gain > best_gain:
                    best_gain = gain
                    best_destination = destination
            if best_destination is not None:
                current[origin].remove(vertex)
                current[best_destination].append(vertex)
                bit = 1 << index[vertex]
                masks[origin] &= ~bit
                masks[best_destination] |= bit
                block_of[vertex] = best_destination
                improved = True

        # Pairwise swaps.
        block_of = _block_of_map(current)
        masks = block_masks()
        vertices = graph.vertices()
        for i, u in enumerate(vertices):
            row_u = rows[index[u]]
            for v in vertices[i + 1:]:
                bu, bv = block_of[u], block_of[v]
                if bu == bv:
                    continue
                row_v = rows[index[v]]
                gain = (
                    (row_u & masks[bv]).bit_count()
                    - (row_u & masks[bu]).bit_count()
                    + (row_v & masks[bu]).bit_count()
                    - (row_v & masks[bv]).bit_count()
                    # Correct for the (u, v) edge being double-counted.
                    - (2 if (row_u >> index[v]) & 1 else 0)
                )
                if gain > 0:
                    current[bu].remove(u)
                    current[bv].remove(v)
                    current[bu].append(v)
                    current[bv].append(u)
                    bit_u = 1 << index[u]
                    bit_v = 1 << index[v]
                    masks[bu] = (masks[bu] & ~bit_u) | bit_v
                    masks[bv] = (masks[bv] & ~bit_v) | bit_u
                    block_of[u], block_of[v] = bv, bu
                    improved = True
        if not improved:
            break
    return current
