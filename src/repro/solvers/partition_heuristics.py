"""Partition heuristics: balanced greedy growth and Kernighan–Lin refinement.

The partitioning stage needs blocks of bounded size (``g_max``) with as few
edges between blocks as possible.  The heuristics here are deliberately
classic:

* :func:`balanced_greedy_partition` grows blocks by BFS from high-degree
  seeds, always absorbing the frontier vertex with the most neighbours
  already inside the block (a locality-preserving greedy);
* :func:`kernighan_lin_refinement` then performs single-vertex relocation and
  pairwise swap passes that strictly reduce the cut while respecting the
  block-size cap.

Both operate on :class:`repro.graphs.graph_state.GraphState` and treat vertex
labels opaquely.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

from repro.graphs.graph_state import GraphState
from repro.utils.misc import make_rng

__all__ = [
    "cut_size",
    "partition_blocks_valid",
    "balanced_greedy_partition",
    "kernighan_lin_refinement",
]

Vertex = Hashable


def cut_size(graph: GraphState, blocks: Sequence[Iterable[Vertex]]) -> int:
    """Number of edges whose endpoints lie in different blocks."""
    return len(graph.cut_edges(blocks))


def partition_blocks_valid(
    graph: GraphState, blocks: Sequence[Iterable[Vertex]], max_block_size: int
) -> bool:
    """Check that ``blocks`` is a partition of the vertices with bounded size."""
    seen: set[Vertex] = set()
    for block in blocks:
        block = list(block)
        if len(block) == 0 or len(block) > max_block_size:
            return False
        for v in block:
            if v in seen or not graph.has_vertex(v):
                return False
            seen.add(v)
    return seen == set(graph.vertices())


def balanced_greedy_partition(
    graph: GraphState,
    max_block_size: int,
    seed: int | None = None,
) -> list[list[Vertex]]:
    """Grow blocks of at most ``max_block_size`` vertices by greedy BFS.

    Each block is seeded with the highest-degree unassigned vertex and grown
    by repeatedly adding the unassigned vertex with the largest number of
    neighbours already inside the block (ties broken by degree, then label
    order for determinism).
    """
    if max_block_size <= 0:
        raise ValueError(f"max_block_size must be positive, got {max_block_size}")
    rng = make_rng(seed)
    unassigned = set(graph.vertices())
    blocks: list[list[Vertex]] = []

    def sort_key(v: Vertex) -> tuple[int, str]:
        """Order vertices by descending degree, ties by repr."""
        return (-graph.degree(v), repr(v))

    while unassigned:
        seed_vertex = min(unassigned, key=sort_key)
        block = [seed_vertex]
        unassigned.discard(seed_vertex)
        while len(block) < max_block_size and unassigned:
            block_set = set(block)
            best_vertex = None
            best_score: tuple[int, int, str] | None = None
            for v in unassigned:
                internal = sum(1 for w in graph.neighbors(v) if w in block_set)
                if internal == 0:
                    continue
                score = (-internal, -graph.degree(v), repr(v))
                if best_score is None or score < best_score:
                    best_score = score
                    best_vertex = v
            if best_vertex is None:
                break
            block.append(best_vertex)
            unassigned.discard(best_vertex)
        blocks.append(block)
    # ``rng`` is kept for interface symmetry with the other heuristics even
    # though the greedy itself is deterministic.
    del rng
    return blocks


def _block_of_map(blocks: Sequence[Sequence[Vertex]]) -> dict[Vertex, int]:
    mapping: dict[Vertex, int] = {}
    for index, block in enumerate(blocks):
        for v in block:
            mapping[v] = index
    return mapping


def kernighan_lin_refinement(
    graph: GraphState,
    blocks: Sequence[Sequence[Vertex]],
    max_block_size: int,
    max_passes: int = 10,
) -> list[list[Vertex]]:
    """Improve a partition by relocations and swaps that reduce the cut.

    A pass alternates two move types until neither improves the cut:

    * relocate a single vertex to another (non-full) block;
    * swap two vertices between blocks.

    Only strictly improving moves are applied, so the refinement terminates
    and never degrades the initial partition.
    """
    if max_block_size <= 0:
        raise ValueError(f"max_block_size must be positive, got {max_block_size}")
    current = [list(block) for block in blocks]
    if not partition_blocks_valid(graph, current, max_block_size):
        raise ValueError("initial blocks are not a valid bounded partition")

    def external_gain(vertex: Vertex, origin: int, destination: int, block_of: dict) -> int:
        """Cut reduction if ``vertex`` moves from ``origin`` to ``destination``."""
        gain = 0
        for w in graph.neighbors(vertex):
            if block_of[w] == origin:
                gain -= 1
            elif block_of[w] == destination:
                gain += 1
        return gain

    for _ in range(max_passes):
        improved = False
        block_of = _block_of_map(current)

        # Single-vertex relocations.
        for vertex in graph.vertices():
            origin = block_of[vertex]
            if len(current[origin]) == 1:
                continue  # never empty a block
            best_gain = 0
            best_destination = None
            for destination in range(len(current)):
                if destination == origin or len(current[destination]) >= max_block_size:
                    continue
                gain = external_gain(vertex, origin, destination, block_of)
                if gain > best_gain:
                    best_gain = gain
                    best_destination = destination
            if best_destination is not None:
                current[origin].remove(vertex)
                current[best_destination].append(vertex)
                block_of[vertex] = best_destination
                improved = True

        # Pairwise swaps.
        block_of = _block_of_map(current)
        vertices = graph.vertices()
        for i, u in enumerate(vertices):
            for v in vertices[i + 1:]:
                bu, bv = block_of[u], block_of[v]
                if bu == bv:
                    continue
                gain = (
                    external_gain(u, bu, bv, block_of)
                    + external_gain(v, bv, bu, block_of)
                    # Correct for the (u, v) edge being double-counted.
                    - (2 if graph.has_edge(u, v) else 0)
                )
                if gain > 0:
                    current[bu].remove(u)
                    current[bv].remove(v)
                    current[bu].append(v)
                    current[bv].append(u)
                    block_of[u], block_of[v] = bv, bu
                    improved = True
        if not improved:
            break
    return current
