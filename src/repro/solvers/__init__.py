"""Optimisation substrates used by the graph-partitioning stage.

The paper formulates partitioning + depth-limited local complementation as a
mixed-integer program and solves it with Gurobi under a 20-minute timeout.
This repository substitutes:

* :mod:`repro.solvers.mip` — a pure-Python 0-1 integer linear program model
  with a branch-and-bound solver, used to solve the partition model exactly
  on small instances (and to test the model formulation itself);
* :mod:`repro.solvers.partition_heuristics` — greedy growth partitioning and
  Kernighan–Lin style refinement, the scalable path used for the paper-sized
  benchmarks;
* :mod:`repro.solvers.annealing` — a small simulated-annealing engine used by
  the combined LC + partition search.
"""

from repro.solvers.mip import (
    BinaryLinearProgram,
    LinearConstraint,
    MIPSolution,
    MIPStatus,
    solve_binary_program,
)
from repro.solvers.partition_heuristics import (
    balanced_greedy_partition,
    cut_size,
    kernighan_lin_refinement,
    partition_blocks_valid,
)
from repro.solvers.annealing import AnnealingResult, simulated_annealing

__all__ = [
    "BinaryLinearProgram",
    "LinearConstraint",
    "MIPSolution",
    "MIPStatus",
    "solve_binary_program",
    "balanced_greedy_partition",
    "cut_size",
    "kernighan_lin_refinement",
    "partition_blocks_valid",
    "AnnealingResult",
    "simulated_annealing",
]
