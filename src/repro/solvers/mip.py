"""A small 0-1 integer linear programming model and branch-and-bound solver.

This is the offline substitute for the Gurobi dependency of the paper: it is
not a general-purpose MIP solver, but it solves the binary programs produced
by the partitioning model exactly on small instances (tens of variables) and
gives the heuristic path something to be validated against in tests.

Model form::

    minimise    sum_j c_j x_j  + constant
    subject to  sum_j a_ij x_j  (<=, >=, ==)  b_i      for every constraint i
                x_j in {0, 1}

The solver performs depth-first branch and bound:

* variables are branched in order of decreasing ``|c_j|`` (most influential
  first);
* a node is pruned when its optimistic bound (fixing every unassigned
  variable to whichever value helps the objective most, ignoring
  constraints) cannot beat the incumbent;
* constraint infeasibility is detected early from optimistic/pessimistic
  partial sums.

``max_nodes`` bounds the search; when it is hit the best incumbent found so
far is returned and flagged as ``FEASIBLE`` rather than ``OPTIMAL``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "MIPStatus",
    "LinearConstraint",
    "BinaryLinearProgram",
    "MIPSolution",
    "solve_binary_program",
]


class MIPStatus(str, enum.Enum):
    """Outcome of a solve."""

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"
    INFEASIBLE = "infeasible"


@dataclass(frozen=True)
class LinearConstraint:
    """``sum_j coefficients[name] * x[name]  sense  rhs``."""

    coefficients: dict[str, float]
    sense: str
    rhs: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.sense not in ("<=", ">=", "=="):
            raise ValueError(f"sense must be one of <=, >=, ==; got {self.sense!r}")
        if not self.coefficients:
            raise ValueError("a constraint needs at least one variable")


@dataclass
class MIPSolution:
    """Solution returned by :func:`solve_binary_program`."""

    status: MIPStatus
    objective: float | None
    assignment: dict[str, int]
    nodes_explored: int

    @property
    def is_optimal(self) -> bool:
        return self.status is MIPStatus.OPTIMAL


class BinaryLinearProgram:
    """Builder for a 0-1 linear program."""

    def __init__(self):
        self._variables: list[str] = []
        self._variable_set: set[str] = set()
        self._objective: dict[str, float] = {}
        self._objective_constant: float = 0.0
        self._constraints: list[LinearConstraint] = []

    # Building ----------------------------------------------------------------

    def add_variable(self, name: str, objective_coefficient: float = 0.0) -> str:
        """Declare a binary variable; re-declaring updates its objective weight."""
        if name not in self._variable_set:
            self._variables.append(name)
            self._variable_set.add(name)
        if objective_coefficient:
            self._objective[name] = self._objective.get(name, 0.0) + objective_coefficient
        return name

    def add_objective_term(self, name: str, coefficient: float) -> None:
        """Add ``coefficient * x[name]`` to the minimised objective."""
        if name not in self._variable_set:
            self.add_variable(name)
        self._objective[name] = self._objective.get(name, 0.0) + coefficient

    def add_objective_constant(self, value: float) -> None:
        self._objective_constant += value

    def add_constraint(
        self, coefficients: dict[str, float], sense: str, rhs: float, name: str = ""
    ) -> None:
        """Add a linear constraint; unknown variables are declared on the fly."""
        for var in coefficients:
            if var not in self._variable_set:
                self.add_variable(var)
        self._constraints.append(
            LinearConstraint(coefficients=dict(coefficients), sense=sense, rhs=rhs, name=name)
        )

    # Introspection -------------------------------------------------------------

    @property
    def variables(self) -> list[str]:
        return list(self._variables)

    @property
    def constraints(self) -> list[LinearConstraint]:
        return list(self._constraints)

    @property
    def num_variables(self) -> int:
        return len(self._variables)

    def objective_value(self, assignment: dict[str, int]) -> float:
        """Evaluate the objective for a full assignment."""
        return self._objective_constant + sum(
            coeff * assignment.get(var, 0) for var, coeff in self._objective.items()
        )

    def is_feasible(self, assignment: dict[str, int]) -> bool:
        """Check all constraints for a full assignment."""
        for constraint in self._constraints:
            value = sum(
                coeff * assignment.get(var, 0)
                for var, coeff in constraint.coefficients.items()
            )
            if constraint.sense == "<=" and value > constraint.rhs + 1e-9:
                return False
            if constraint.sense == ">=" and value < constraint.rhs - 1e-9:
                return False
            if constraint.sense == "==" and abs(value - constraint.rhs) > 1e-9:
                return False
        return True


def _constraint_possible(
    constraint: LinearConstraint, assignment: dict[str, int]
) -> bool:
    """Can the constraint still be satisfied given a partial assignment?"""
    fixed = 0.0
    min_free = 0.0
    max_free = 0.0
    for var, coeff in constraint.coefficients.items():
        if var in assignment:
            fixed += coeff * assignment[var]
        elif coeff >= 0:
            max_free += coeff
        else:
            min_free += coeff
    lowest = fixed + min_free
    highest = fixed + max_free
    if constraint.sense == "<=":
        return lowest <= constraint.rhs + 1e-9
    if constraint.sense == ">=":
        return highest >= constraint.rhs - 1e-9
    return lowest <= constraint.rhs + 1e-9 and highest >= constraint.rhs - 1e-9


def solve_binary_program(
    program: BinaryLinearProgram, max_nodes: int = 200_000
) -> MIPSolution:
    """Solve ``program`` by depth-first branch and bound.

    Args:
        program: the model to solve.
        max_nodes: node budget; when exhausted the best incumbent is returned
            with status ``FEASIBLE`` (or ``INFEASIBLE`` if none was found — in
            that case the caller cannot distinguish a truly infeasible model
            from an exhausted budget and should fall back to a heuristic).
    """
    variables = program.variables
    objective = {v: program._objective.get(v, 0.0) for v in variables}
    # Branch in declaration order: models declare their "structural" variables
    # (e.g. vertex-to-block assignments) before the derived linearisation
    # variables, so the assignment constraints prune early and a feasible
    # incumbent is found after a single descent.
    order = list(variables)

    best_assignment: dict[str, int] | None = None
    best_value = float("inf")
    nodes = 0
    budget_exhausted = False

    def optimistic_bound(assignment: dict[str, int]) -> float:
        """Best objective reachable from a partial assignment."""
        bound = program._objective_constant
        for var in variables:
            coeff = objective[var]
            if var in assignment:
                bound += coeff * assignment[var]
            elif coeff < 0:
                bound += coeff
        return bound

    def recurse(index: int, assignment: dict[str, int]) -> None:
        """Branch on variable ``index`` with the current partial assignment."""
        nonlocal best_assignment, best_value, nodes, budget_exhausted
        if budget_exhausted:
            return
        nodes += 1
        if nodes > max_nodes:
            budget_exhausted = True
            return
        for constraint in program.constraints:
            if not _constraint_possible(constraint, assignment):
                return
        if optimistic_bound(assignment) >= best_value - 1e-12:
            return
        if index == len(order):
            value = program.objective_value(assignment)
            if program.is_feasible(assignment) and value < best_value:
                best_value = value
                best_assignment = dict(assignment)
            return
        var = order[index]
        coeff = objective[var]
        # Explore the objective-friendly branch first.
        branches = (1, 0) if coeff < 0 else (0, 1)
        for value in branches:
            assignment[var] = value
            recurse(index + 1, assignment)
            del assignment[var]

    recurse(0, {})

    if best_assignment is None:
        return MIPSolution(
            status=MIPStatus.INFEASIBLE, objective=None, assignment={}, nodes_explored=nodes
        )
    status = MIPStatus.FEASIBLE if budget_exhausted else MIPStatus.OPTIMAL
    # Fill unassigned variables (can happen only if there are none in order).
    for var in variables:
        best_assignment.setdefault(var, 0)
    return MIPSolution(
        status=status,
        objective=best_value,
        assignment=best_assignment,
        nodes_explored=nodes,
    )
